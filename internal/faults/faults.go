// Package faults injects sensor malfunctions into measurement streams.
// The paper's evaluation stresses only network pathologies (message
// loss, out-of-order delivery, Scenario C); real deployments also see
// stuck detectors, calibration drift, intermittent dropouts, burst
// noise, and spoofed readings. This package models those as composable
// per-sensor fault specs applied by a deterministic, seeded Injector,
// so every chaos experiment is exactly reproducible regardless of the
// order in which messages are generated or delivered.
//
// Determinism contract: the randomness behind a reading's fault is a
// pure function of (injector seed, sensor index, emit step). Two
// injectors with the same seed and specs transform the same reading
// identically even when trials run concurrently or plans reorder
// deliveries.
package faults

import (
	"fmt"
	"math"
	"sort"

	"radloc/internal/rng"
)

// Kind classifies a sensor fault model.
type Kind int

// Fault kinds.
const (
	// StuckAt replaces every reading with a constant CPM (ADC failure,
	// saturated or shorted counter).
	StuckAt Kind = iota + 1
	// Drift multiplies readings by a gain ramp 1 + Gain·(step−StartStep),
	// modelling calibration drift of the counting efficiency.
	Drift
	// Dropout loses each reading independently with probability Prob
	// (flaky radio, brown-outs). Prob = 1 is a dead sensor.
	Dropout
	// Burst adds BurstCPM counts with probability Prob (electrical
	// interference, cosmic-ray showers).
	Burst
	// Byzantine replaces readings with uniform spoofed values in
	// [0, MaxCPM] — an adversarial or wildly miscounting sensor.
	Byzantine
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case StuckAt:
		return "stuck-at"
	case Drift:
		return "drift"
	case Dropout:
		return "dropout"
	case Burst:
		return "burst"
	case Byzantine:
		return "byzantine"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// DefaultByzantineCeiling is the spoof range used when a Byzantine spec
// leaves MaxCPM unset.
const DefaultByzantineCeiling = 2000

// Spec attaches one fault model to one sensor. Multiple specs may
// target the same sensor; they compose in slice order.
type Spec struct {
	// Sensor is the index of the afflicted sensor.
	Sensor int
	// Kind selects the fault model.
	Kind Kind
	// StartStep is the onset time step; readings emitted earlier are
	// unaffected (0 = faulty from the start).
	StartStep int

	// StuckCPM is the constant reading under StuckAt.
	StuckCPM int
	// Gain is the per-step gain increment under Drift: a reading at
	// step t becomes reading·(1 + Gain·(t−StartStep)), floored at 0.
	Gain float64
	// Prob is the per-reading probability for Dropout and Burst.
	Prob float64
	// BurstCPM is the count added during a Burst event.
	BurstCPM int
	// MaxCPM bounds Byzantine spoofed readings (default
	// DefaultByzantineCeiling).
	MaxCPM int
}

// Validate checks the spec against the deployment size.
func (s Spec) Validate(numSensors int) error {
	if s.Sensor < 0 || s.Sensor >= numSensors {
		return fmt.Errorf("faults: spec targets sensor %d of %d", s.Sensor, numSensors)
	}
	if s.StartStep < 0 {
		return fmt.Errorf("faults: spec has negative start step %d", s.StartStep)
	}
	switch s.Kind {
	case StuckAt:
		if s.StuckCPM < 0 {
			return fmt.Errorf("faults: stuck-at spec has negative CPM %d", s.StuckCPM)
		}
	case Drift:
		if math.IsNaN(s.Gain) || math.IsInf(s.Gain, 0) {
			return fmt.Errorf("faults: drift spec has non-finite gain")
		}
	case Dropout, Burst:
		if s.Prob < 0 || s.Prob > 1 || math.IsNaN(s.Prob) {
			return fmt.Errorf("faults: %s spec has probability %v outside [0,1]", s.Kind, s.Prob)
		}
		if s.Kind == Burst && s.BurstCPM < 0 {
			return fmt.Errorf("faults: burst spec has negative burst CPM %d", s.BurstCPM)
		}
	case Byzantine:
		if s.MaxCPM < 0 {
			return fmt.Errorf("faults: byzantine spec has negative ceiling %d", s.MaxCPM)
		}
	default:
		return fmt.Errorf("faults: spec has unknown kind %d", int(s.Kind))
	}
	return nil
}

// Injector applies a fault plan deterministically. A nil *Injector is
// valid and passes every reading through untouched.
type Injector struct {
	seed   uint64
	table  [][]Spec // specs per sensor index
	faulty []int    // sorted indices with ≥ 1 spec
}

// NewInjector validates the specs and builds an injector for a
// deployment of numSensors sensors.
func NewInjector(numSensors int, seed uint64, specs []Spec) (*Injector, error) {
	if numSensors < 1 {
		return nil, fmt.Errorf("faults: %d sensors", numSensors)
	}
	in := &Injector{seed: seed, table: make([][]Spec, numSensors)}
	for i, s := range specs {
		if err := s.Validate(numSensors); err != nil {
			return nil, fmt.Errorf("spec %d: %w", i, err)
		}
		in.table[s.Sensor] = append(in.table[s.Sensor], s)
	}
	for i, specs := range in.table {
		if len(specs) > 0 {
			in.faulty = append(in.faulty, i)
		}
	}
	sort.Ints(in.faulty)
	return in, nil
}

// Faulty returns the sorted indices of sensors with at least one fault.
func (in *Injector) Faulty() []int {
	if in == nil {
		return nil
	}
	return append([]int(nil), in.faulty...)
}

// splitmix64 finalizer: decorrelates nearby seeds/indices/steps.
func mix(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// streamFor derives the one-shot stream for a (sensor, step) pair.
// salt separates the delivery decision from value transforms so the
// two never consume each other's draws.
func (in *Injector) streamFor(sensor, step int, salt uint64) *rng.Stream {
	return rng.New(mix(in.seed^mix(uint64(sensor))), mix(uint64(step)*2+salt))
}

const (
	saltDeliver = 0
	saltValue   = 1
)

// Delivered reports whether the sensor's reading at the given emit
// step reaches the fusion center (false = lost to a Dropout fault).
func (in *Injector) Delivered(sensor, step int) bool {
	if in == nil || sensor < 0 || sensor >= len(in.table) {
		return true
	}
	var stream *rng.Stream
	for _, s := range in.table[sensor] {
		if s.Kind != Dropout || step < s.StartStep {
			continue
		}
		if stream == nil {
			stream = in.streamFor(sensor, step, saltDeliver)
		}
		if stream.Float64() < s.Prob {
			return false
		}
	}
	return true
}

// Transform applies the sensor's value-level faults (StuckAt, Drift,
// Burst, Byzantine) to one reading. Dropout is handled by Delivered.
func (in *Injector) Transform(sensor, step, cpm int) int {
	if in == nil || sensor < 0 || sensor >= len(in.table) {
		return cpm
	}
	var stream *rng.Stream
	for _, s := range in.table[sensor] {
		if step < s.StartStep {
			continue
		}
		switch s.Kind {
		case StuckAt:
			cpm = s.StuckCPM
		case Drift:
			factor := 1 + s.Gain*float64(step-s.StartStep)
			if factor < 0 {
				factor = 0
			}
			cpm = int(math.Round(float64(cpm) * factor))
		case Burst:
			if stream == nil {
				stream = in.streamFor(sensor, step, saltValue)
			}
			if stream.Float64() < s.Prob {
				cpm += s.BurstCPM
			}
		case Byzantine:
			if stream == nil {
				stream = in.streamFor(sensor, step, saltValue)
			}
			ceiling := s.MaxCPM
			if ceiling == 0 {
				ceiling = DefaultByzantineCeiling
			}
			cpm = stream.IntN(ceiling + 1)
		}
	}
	if cpm < 0 {
		cpm = 0
	}
	return cpm
}

// Apply is Delivered + Transform in one call: it returns the possibly
// transformed reading and whether it is delivered at all.
func (in *Injector) Apply(sensor, step, cpm int) (int, bool) {
	if !in.Delivered(sensor, step) {
		return 0, false
	}
	return in.Transform(sensor, step, cpm), true
}
