package faults

import (
	"math"
	"strings"
	"testing"
)

func TestSpecValidation(t *testing.T) {
	bad := []Spec{
		{Sensor: -1, Kind: StuckAt},
		{Sensor: 9, Kind: StuckAt},
		{Sensor: 0, Kind: StuckAt, StartStep: -1},
		{Sensor: 0, Kind: StuckAt, StuckCPM: -5},
		{Sensor: 0, Kind: Drift, Gain: math.NaN()},
		{Sensor: 0, Kind: Drift, Gain: math.Inf(1)},
		{Sensor: 0, Kind: Dropout, Prob: -0.1},
		{Sensor: 0, Kind: Dropout, Prob: 1.5},
		{Sensor: 0, Kind: Burst, Prob: 0.5, BurstCPM: -1},
		{Sensor: 0, Kind: Byzantine, MaxCPM: -1},
		{Sensor: 0, Kind: Kind(42)},
	}
	for i, s := range bad {
		if err := s.Validate(9); err == nil {
			t.Errorf("spec %d (%+v) accepted", i, s)
		}
	}
	if _, err := NewInjector(0, 1, nil); err == nil {
		t.Error("zero-sensor injector accepted")
	}
	if _, err := NewInjector(9, 1, []Spec{{Sensor: 42, Kind: StuckAt}}); err == nil {
		t.Error("out-of-range spec accepted")
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		StuckAt: "stuck-at", Drift: "drift", Dropout: "dropout",
		Burst: "burst", Byzantine: "byzantine",
	} {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), want)
		}
	}
	if !strings.Contains(Kind(99).String(), "99") {
		t.Error("unknown kind string")
	}
}

func TestNilInjectorPassesThrough(t *testing.T) {
	var in *Injector
	if !in.Delivered(3, 7) {
		t.Error("nil injector dropped a reading")
	}
	if got := in.Transform(3, 7, 42); got != 42 {
		t.Errorf("nil injector transformed 42 → %d", got)
	}
	if got, ok := in.Apply(3, 7, 42); !ok || got != 42 {
		t.Errorf("nil injector Apply = (%d, %v)", got, ok)
	}
	if in.Faulty() != nil {
		t.Error("nil injector reports faulty sensors")
	}
}

func TestStuckAt(t *testing.T) {
	in, err := NewInjector(4, 1, []Spec{{Sensor: 2, Kind: StuckAt, StuckCPM: 500, StartStep: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if got := in.Transform(2, 2, 10); got != 10 {
		t.Errorf("pre-onset reading transformed: %d", got)
	}
	for step := 3; step < 8; step++ {
		if got := in.Transform(2, step, 10); got != 500 {
			t.Errorf("step %d: stuck reading = %d, want 500", step, got)
		}
	}
	if got := in.Transform(1, 5, 10); got != 10 {
		t.Errorf("healthy sensor transformed: %d", got)
	}
}

func TestDriftRamp(t *testing.T) {
	in, err := NewInjector(4, 1, []Spec{{Sensor: 0, Kind: Drift, Gain: 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	// step 0: ×1, step 2: ×2, step 4: ×3.
	for _, tc := range []struct{ step, want int }{{0, 100}, {2, 200}, {4, 300}} {
		if got := in.Transform(0, tc.step, 100); got != tc.want {
			t.Errorf("step %d: %d, want %d", tc.step, got, tc.want)
		}
	}
	// Negative gain floors at zero rather than going negative.
	neg, err := NewInjector(4, 1, []Spec{{Sensor: 0, Kind: Drift, Gain: -1}})
	if err != nil {
		t.Fatal(err)
	}
	if got := neg.Transform(0, 10, 100); got != 0 {
		t.Errorf("negative-gain drift yields %d, want 0", got)
	}
}

func TestDropoutRates(t *testing.T) {
	in, err := NewInjector(4, 7, []Spec{{Sensor: 1, Kind: Dropout, Prob: 0.3}})
	if err != nil {
		t.Fatal(err)
	}
	lost := 0
	const n = 5000
	for step := 0; step < n; step++ {
		if !in.Delivered(1, step) {
			lost++
		}
	}
	rate := float64(lost) / n
	if rate < 0.25 || rate > 0.35 {
		t.Errorf("dropout rate %v, want ≈ 0.3", rate)
	}
	for step := 0; step < 100; step++ {
		if !in.Delivered(0, step) {
			t.Fatal("healthy sensor dropped")
		}
	}
	// Prob = 1 is a dead sensor.
	dead, err := NewInjector(4, 7, []Spec{{Sensor: 2, Kind: Dropout, Prob: 1}})
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 50; step++ {
		if dead.Delivered(2, step) {
			t.Fatal("dead sensor delivered")
		}
	}
}

func TestBurstAddsCounts(t *testing.T) {
	in, err := NewInjector(4, 3, []Spec{{Sensor: 0, Kind: Burst, Prob: 0.4, BurstCPM: 1000}})
	if err != nil {
		t.Fatal(err)
	}
	bursts := 0
	const n = 5000
	for step := 0; step < n; step++ {
		got := in.Transform(0, step, 10)
		switch got {
		case 10:
		case 1010:
			bursts++
		default:
			t.Fatalf("step %d: burst produced %d", step, got)
		}
	}
	rate := float64(bursts) / n
	if rate < 0.35 || rate > 0.45 {
		t.Errorf("burst rate %v, want ≈ 0.4", rate)
	}
}

func TestByzantineSpoofs(t *testing.T) {
	in, err := NewInjector(4, 5, []Spec{{Sensor: 3, Kind: Byzantine}})
	if err != nil {
		t.Fatal(err)
	}
	varies := false
	for step := 0; step < 200; step++ {
		got := in.Transform(3, step, 10)
		if got < 0 || got > DefaultByzantineCeiling {
			t.Fatalf("spoof %d outside [0, %d]", got, DefaultByzantineCeiling)
		}
		if got != 10 {
			varies = true
		}
	}
	if !varies {
		t.Error("byzantine spoofs never changed the reading")
	}
}

func TestDeterminismAndOrderIndependence(t *testing.T) {
	specs := []Spec{
		{Sensor: 0, Kind: Dropout, Prob: 0.5},
		{Sensor: 1, Kind: Byzantine},
		{Sensor: 2, Kind: Burst, Prob: 0.5, BurstCPM: 77},
	}
	a, err := NewInjector(4, 11, specs)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewInjector(4, 11, specs)
	if err != nil {
		t.Fatal(err)
	}
	// Querying b in reverse order must not change any per-reading result:
	// randomness is a pure function of (seed, sensor, step).
	type key struct{ sensor, step int }
	got := map[key][2]int{}
	for sensor := 0; sensor < 4; sensor++ {
		for step := 0; step < 50; step++ {
			v, ok := a.Apply(sensor, step, 10)
			d := 0
			if ok {
				d = 1
			}
			got[key{sensor, step}] = [2]int{v, d}
		}
	}
	for sensor := 3; sensor >= 0; sensor-- {
		for step := 49; step >= 0; step-- {
			v, ok := b.Apply(sensor, step, 10)
			d := 0
			if ok {
				d = 1
			}
			if want := got[key{sensor, step}]; want != [2]int{v, d} {
				t.Fatalf("sensor %d step %d: reverse-order result (%d,%d) != forward %v",
					sensor, step, v, d, want)
			}
		}
	}
	// A different seed must produce a different stream somewhere.
	c, err := NewInjector(4, 12, specs)
	if err != nil {
		t.Fatal(err)
	}
	differs := false
	for step := 0; step < 50 && !differs; step++ {
		av, aok := a.Apply(1, step, 10)
		cv, cok := c.Apply(1, step, 10)
		if av != cv || aok != cok {
			differs = true
		}
	}
	if !differs {
		t.Error("seeds 11 and 12 produced identical byzantine streams")
	}
}

func TestComposition(t *testing.T) {
	// Drift then burst on the same sensor: both visible.
	in, err := NewInjector(2, 9, []Spec{
		{Sensor: 0, Kind: Drift, Gain: 1},                 // step 1 → ×2
		{Sensor: 0, Kind: Burst, Prob: 1, BurstCPM: 5},    // always fires
		{Sensor: 0, Kind: Dropout, Prob: 0, StartStep: 0}, // never drops
	})
	if err != nil {
		t.Fatal(err)
	}
	got, ok := in.Apply(0, 1, 10)
	if !ok || got != 25 {
		t.Errorf("composed faults: (%d, %v), want (25, true)", got, ok)
	}
	if want := []int{0}; len(in.Faulty()) != 1 || in.Faulty()[0] != want[0] {
		t.Errorf("Faulty() = %v, want %v", in.Faulty(), want)
	}
}
