package clock

import (
	"context"
	"testing"
	"time"
)

func TestFakeSleepAdvances(t *testing.T) {
	start := time.Unix(0, 0)
	f := NewFake(start)
	f.Sleep(3 * time.Second)
	f.Sleep(-time.Second) // ignored
	f.Sleep(500 * time.Millisecond)
	if got, want := f.Now(), start.Add(3500*time.Millisecond); !got.Equal(want) {
		t.Errorf("Now() = %v, want %v", got, want)
	}
	slept := f.Slept()
	if len(slept) != 2 || slept[0] != 3*time.Second || slept[1] != 500*time.Millisecond {
		t.Errorf("Slept() = %v", slept)
	}
}

func TestFakeAdvanceDoesNotRecord(t *testing.T) {
	f := NewFake(time.Unix(100, 0))
	f.Advance(time.Minute)
	if len(f.Slept()) != 0 {
		t.Errorf("Advance recorded a sleep: %v", f.Slept())
	}
	if got := f.Now(); !got.Equal(time.Unix(160, 0)) {
		t.Errorf("Now() = %v", got)
	}
}

func TestFakeWithTimeoutNeverFires(t *testing.T) {
	f := NewFake(time.Unix(0, 0))
	ctx, cancel := f.WithTimeout(context.Background(), time.Nanosecond)
	f.Advance(time.Hour)
	select {
	case <-ctx.Done():
		t.Fatal("fake timeout fired on its own")
	default:
	}
	cancel()
	<-ctx.Done()
}

func TestRealWithTimeout(t *testing.T) {
	ctx, cancel := Real{}.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	select {
	case <-ctx.Done():
	case <-time.After(2 * time.Second):
		t.Fatal("real timeout did not fire")
	}
}
