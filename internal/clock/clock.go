// Package clock abstracts time for components that must be
// deterministic under test: the sensor transport's backoff and circuit
// breaker, the daemon's token buckets, and the network-chaos harness
// all take a Clock instead of calling the time package directly, so a
// Fake clock can replay an identical schedule on every run.
package clock

import (
	"context"
	"sync"
	"time"
)

// Clock is the time source. Implementations must be safe for
// concurrent use.
type Clock interface {
	// Now returns the current instant.
	Now() time.Time
	// Sleep blocks for d (or, for a fake, advances virtual time by d).
	Sleep(d time.Duration)
	// WithTimeout derives a context that is cancelled after d. The real
	// clock delegates to context.WithTimeout; fakes may return a
	// cancel-only context so virtual-time tests never race a runtime
	// timer.
	WithTimeout(ctx context.Context, d time.Duration) (context.Context, context.CancelFunc)
}

// Real is the wall clock.
type Real struct{}

// Now implements Clock.
func (Real) Now() time.Time { return time.Now() }

// Sleep implements Clock.
func (Real) Sleep(d time.Duration) { time.Sleep(d) }

// WithTimeout implements Clock.
func (Real) WithTimeout(ctx context.Context, d time.Duration) (context.Context, context.CancelFunc) {
	return context.WithTimeout(ctx, d)
}

// Fake is a deterministic virtual clock. Sleep advances virtual time
// immediately instead of blocking, so a retry loop that would take
// minutes of wall time runs in microseconds while still observing the
// exact schedule (every Now() along the way reads the time a real run
// would have reached). Safe for concurrent use.
type Fake struct {
	mu    sync.Mutex
	now   time.Time
	slept []time.Duration
}

// NewFake returns a Fake positioned at start.
func NewFake(start time.Time) *Fake { return &Fake{now: start} }

// Now implements Clock.
func (f *Fake) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

// Sleep implements Clock: virtual time jumps forward by d and the call
// returns immediately. Negative durations are ignored.
func (f *Fake) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	f.mu.Lock()
	f.now = f.now.Add(d)
	f.slept = append(f.slept, d)
	f.mu.Unlock()
}

// Advance moves virtual time forward without recording a sleep.
func (f *Fake) Advance(d time.Duration) {
	f.mu.Lock()
	f.now = f.now.Add(d)
	f.mu.Unlock()
}

// Slept returns a copy of every Sleep duration observed, in order —
// the transport's exact retry schedule, used by determinism tests.
func (f *Fake) Slept() []time.Duration {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]time.Duration(nil), f.slept...)
}

// WithTimeout implements Clock. The fake returns a cancel-only
// context: virtual time cannot fire runtime timers, and deterministic
// tests must not depend on wall-clock deadlines.
func (f *Fake) WithTimeout(ctx context.Context, _ time.Duration) (context.Context, context.CancelFunc) {
	return context.WithCancel(ctx)
}
