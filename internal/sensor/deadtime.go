package sensor

import (
	"errors"
	"math"
)

// Geiger–Müller counters cannot register a second ionization while the
// tube recovers from the previous one, so observed count rates saturate
// at high intensities. The standard non-paralyzable model relates the
// true rate n (CPM) to the observed rate m:
//
//	m = n / (1 + n·τ)    and inversely    n = m / (1 − m·τ)
//
// with τ the dead time in minutes. Typical GM dead times are 50–200 µs
// (≈ 1–3×10⁻⁶ min), so the distortion only matters near strong sources —
// exactly the sensors whose readings drive localization, which is why a
// production deployment corrects for it before feeding the filter.

// ErrSaturated is returned by CorrectDeadTime when the observed rate
// is at or beyond the theoretical saturation limit 1/τ.
var ErrSaturated = errors.New("sensor: reading at or beyond dead-time saturation")

// ApplyDeadTime maps a true rate to the expected observed rate under
// the non-paralyzable model. τ ≤ 0 is a perfect counter.
func ApplyDeadTime(trueCPM, tauMinutes float64) float64 {
	if tauMinutes <= 0 || trueCPM <= 0 {
		return math.Max(trueCPM, 0)
	}
	return trueCPM / (1 + trueCPM*tauMinutes)
}

// CorrectDeadTime inverts ApplyDeadTime: recover the true rate from an
// observed rate. Returns ErrSaturated when observed·τ ≥ 1 (no finite
// true rate produces such a reading).
func CorrectDeadTime(observedCPM, tauMinutes float64) (float64, error) {
	if tauMinutes <= 0 || observedCPM <= 0 {
		return math.Max(observedCPM, 0), nil
	}
	denom := 1 - observedCPM*tauMinutes
	if denom <= 0 {
		return 0, ErrSaturated
	}
	return observedCPM / denom, nil
}

// SaturationCPM returns the maximum observable rate 1/τ of a counter
// with the given dead time (infinite for a perfect counter).
func SaturationCPM(tauMinutes float64) float64 {
	if tauMinutes <= 0 {
		return math.Inf(1)
	}
	return 1 / tauMinutes
}
