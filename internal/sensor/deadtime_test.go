package sensor

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestApplyDeadTimeBasics(t *testing.T) {
	// Perfect counter: identity.
	if got := ApplyDeadTime(1000, 0); got != 1000 {
		t.Errorf("τ=0: %v", got)
	}
	if got := ApplyDeadTime(-5, 1e-6); got != 0 {
		t.Errorf("negative rate: %v", got)
	}
	// At n = 1/τ the observed rate is exactly half the true rate.
	tau := 2e-6
	n := 1 / tau
	if got := ApplyDeadTime(n, tau); math.Abs(got-n/2) > 1e-6 {
		t.Errorf("half-rate point: %v, want %v", got, n/2)
	}
	// Low rates are barely affected.
	if got := ApplyDeadTime(100, 1e-6); math.Abs(got-100)/100 > 1e-3 {
		t.Errorf("low-rate distortion too large: %v", got)
	}
	// Observed rate can never exceed saturation.
	if got := ApplyDeadTime(1e12, tau); got > SaturationCPM(tau) {
		t.Errorf("observed %v beyond saturation %v", got, SaturationCPM(tau))
	}
}

func TestCorrectDeadTimeRoundTrip(t *testing.T) {
	f := func(rate uint32, tauExp uint8) bool {
		trueCPM := float64(rate%2_000_000) + 1
		tau := math.Pow(10, -6-float64(tauExp%3)) // 1e-6 .. 1e-8 min
		obs := ApplyDeadTime(trueCPM, tau)
		back, err := CorrectDeadTime(obs, tau)
		if err != nil {
			return false
		}
		return math.Abs(back-trueCPM) <= 1e-6*(1+trueCPM)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCorrectDeadTimeSaturation(t *testing.T) {
	tau := 1e-6
	sat := SaturationCPM(tau)
	if _, err := CorrectDeadTime(sat, tau); !errors.Is(err, ErrSaturated) {
		t.Errorf("at saturation: %v", err)
	}
	if _, err := CorrectDeadTime(sat*1.5, tau); !errors.Is(err, ErrSaturated) {
		t.Errorf("beyond saturation: %v", err)
	}
	got, err := CorrectDeadTime(sat*0.5, tau)
	if err != nil || math.Abs(got-sat) > 1e-6 {
		t.Errorf("half saturation corrects to 1/τ: %v, %v", got, err)
	}
}

func TestCorrectDeadTimeDegenerate(t *testing.T) {
	if got, err := CorrectDeadTime(500, 0); err != nil || got != 500 {
		t.Errorf("perfect counter: %v, %v", got, err)
	}
	if got, err := CorrectDeadTime(-3, 1e-6); err != nil || got != 0 {
		t.Errorf("negative reading: %v, %v", got, err)
	}
}

func TestSaturationCPM(t *testing.T) {
	if got := SaturationCPM(0); !math.IsInf(got, 1) {
		t.Errorf("perfect counter saturation: %v", got)
	}
	if got := SaturationCPM(2e-6); math.Abs(got-5e5) > 1 {
		t.Errorf("saturation: %v, want 5e5", got)
	}
}
