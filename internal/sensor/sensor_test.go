package sensor

import (
	"errors"
	"math"
	"testing"

	"radloc/internal/geometry"
	"radloc/internal/radiation"
	"radloc/internal/rng"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestExpectedCPM(t *testing.T) {
	s := Sensor{ID: 0, Pos: geometry.V(10, 0), Efficiency: 1e-4, Background: 5}
	src := radiation.Source{Pos: geometry.V(0, 0), Strength: 10}
	want := radiation.CPMPerMicroCurie*1e-4*10.0/101 + 5
	if got := s.ExpectedCPM([]radiation.Source{src}, nil); !almostEq(got, want, 1e-9) {
		t.Errorf("ExpectedCPM = %v, want %v", got, want)
	}
}

func TestMeasurePoissonStatistics(t *testing.T) {
	s := Sensor{ID: 3, Pos: geometry.V(5, 5), Efficiency: 1e-4, Background: 20}
	src := radiation.Source{Pos: geometry.V(5, 8), Strength: 50}
	lambda := s.ExpectedCPM([]radiation.Source{src}, nil)
	stream := rng.New(42, 42)
	const n = 50_000
	var sum float64
	for i := 0; i < n; i++ {
		m := s.Measure(stream, []radiation.Source{src}, nil, 7)
		if m.SensorID != 3 || m.Step != 7 || !m.Pos.Eq(s.Pos) {
			t.Fatalf("measurement metadata wrong: %+v", m)
		}
		if m.CPM < 0 {
			t.Fatal("negative CPM")
		}
		sum += float64(m.CPM)
	}
	mean := sum / n
	if math.Abs(mean-lambda)/lambda > 0.02 {
		t.Errorf("measurement mean = %v, want ≈%v", mean, lambda)
	}
}

func TestLogLikelihoodPeaksAtTruth(t *testing.T) {
	s := Sensor{Pos: geometry.V(0, 0), Efficiency: 1e-4, Background: 5}
	truth := radiation.Source{Pos: geometry.V(5, 0), Strength: 100}
	lambda := radiation.ExpectedCPMSingle(s.Pos, s.Efficiency, s.Background, truth)
	cpm := int(math.Round(lambda))

	llTruth := s.LogLikelihood(cpm, truth)
	// A hypothesis far from the truth must score lower.
	far := radiation.Source{Pos: geometry.V(80, 80), Strength: 100}
	if llFar := s.LogLikelihood(cpm, far); llFar >= llTruth {
		t.Errorf("far hypothesis scored %v ≥ truth %v", llFar, llTruth)
	}
	// A wildly wrong strength must score lower too.
	weak := radiation.Source{Pos: geometry.V(5, 0), Strength: 0.01}
	if llWeak := s.LogLikelihood(cpm, weak); llWeak >= llTruth {
		t.Errorf("weak hypothesis scored %v ≥ truth %v", llWeak, llTruth)
	}
}

func TestCalibrate(t *testing.T) {
	trueEff := 2.5e-4
	s := Sensor{Pos: geometry.V(3, 0), Efficiency: trueEff, Background: 10}
	check := radiation.Source{Pos: geometry.V(0, 0), Strength: 200}
	stream := rng.New(7, 9)
	readings := make([]int, 2000)
	for i := range readings {
		readings[i] = s.Measure(stream, []radiation.Source{check}, nil, 0).CPM
	}
	got, err := Calibrate(readings, s.Pos, s.Background, check)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-trueEff)/trueEff > 0.05 {
		t.Errorf("calibrated efficiency = %v, want ≈%v", got, trueEff)
	}
}

func TestCalibrateErrors(t *testing.T) {
	if _, err := Calibrate(nil, geometry.V(0, 0), 5, radiation.Source{Strength: 1}); !errors.Is(err, ErrNoReadings) {
		t.Errorf("empty readings err = %v", err)
	}
	if _, err := Calibrate([]int{5}, geometry.V(0, 0), 5, radiation.Source{Strength: 0}); err == nil {
		t.Error("zero-strength check source should error")
	}
	// All-background readings clamp to zero efficiency, not negative.
	eff, err := Calibrate([]int{0, 0, 0}, geometry.V(1, 0), 5, radiation.Source{Strength: 10})
	if err != nil || eff != 0 {
		t.Errorf("sub-background calibration = %v, %v; want 0, nil", eff, err)
	}
}

func TestGridLayout(t *testing.T) {
	b := geometry.NewRect(geometry.V(0, 0), geometry.V(100, 100))
	g := Grid(b, 6, 6, 1e-4, 5)
	if len(g) != 36 {
		t.Fatalf("grid count = %d, want 36", len(g))
	}
	if !g[0].Pos.Eq(geometry.V(0, 0)) {
		t.Errorf("first sensor at %v, want (0,0)", g[0].Pos)
	}
	if !g[35].Pos.Eq(geometry.V(100, 100)) {
		t.Errorf("last sensor at %v, want (100,100)", g[35].Pos)
	}
	if !g[1].Pos.Eq(geometry.V(20, 0)) {
		t.Errorf("second sensor at %v, want (20,0)", g[1].Pos)
	}
	for i, s := range g {
		if s.ID != i {
			t.Fatalf("sensor %d has ID %d", i, s.ID)
		}
	}
	if got := Grid(b, 0, 6, 1e-4, 5); got != nil {
		t.Errorf("degenerate grid = %v", got)
	}
	// Single row/column centers on the axis.
	one := Grid(b, 1, 1, 1e-4, 5)
	if len(one) != 1 || !one[0].Pos.Eq(geometry.V(50, 50)) {
		t.Errorf("1x1 grid = %+v", one)
	}
}

func TestPoissonField(t *testing.T) {
	b := geometry.NewRect(geometry.V(0, 0), geometry.V(260, 260))
	stream := rng.New(5, 5)
	f := PoissonField(b, 195, stream, 1e-4, 5)
	if len(f) != 195 {
		t.Fatalf("field count = %d", len(f))
	}
	for _, s := range f {
		if !b.Contains(s.Pos) {
			t.Fatalf("sensor outside bounds: %v", s.Pos)
		}
	}
	if got := PoissonField(b, 0, stream, 1e-4, 5); got != nil {
		t.Errorf("zero-count field = %v", got)
	}
	// Same seed reproduces the same layout.
	f2 := PoissonField(b, 195, rng.New(5, 5), 1e-4, 5)
	for i := range f {
		if !f[i].Pos.Eq(f2[i].Pos) {
			t.Fatal("Poisson field not reproducible from seed")
		}
	}
}

func TestPerturbEfficiencies(t *testing.T) {
	b := geometry.NewRect(geometry.V(0, 0), geometry.V(100, 100))
	g := Grid(b, 3, 3, 1e-4, 5)
	PerturbEfficiencies(g, 0.1, rng.New(1, 1))
	varied := 0
	for _, s := range g {
		if s.Efficiency < 0.9e-4-1e-12 || s.Efficiency > 1.1e-4+1e-12 {
			t.Fatalf("efficiency out of band: %v", s.Efficiency)
		}
		if s.Efficiency != 1e-4 {
			varied++
		}
	}
	if varied == 0 {
		t.Error("no efficiency was perturbed")
	}
}
