// Package sensor models the radiation sensors of Section III: each
// sensor counts ionization events over a fixed interval, reporting
// counts per minute (CPM) distributed Poisson with mean given by
// Eq. (4). Sensors differ in counting efficiency (manufacturing bias)
// and observe a site-specific background rate.
package sensor

import (
	"errors"
	"fmt"

	"radloc/internal/geometry"
	"radloc/internal/radiation"
	"radloc/internal/rng"
	"radloc/internal/stat"
)

// DefaultEfficiency is the counting-efficiency constant E_i used when a
// scenario does not specify one. See DESIGN.md §3: it places a 4 µCi
// source at grid-neighbour distance on par with a 5 CPM background,
// reproducing the paper's "weak source resembles background" regime.
const DefaultEfficiency = 1e-4

// Sensor is a radiation counter at a known position.
type Sensor struct {
	ID         int
	Pos        geometry.Vec
	Efficiency float64 // counting efficiency E_i, > 0
	Background float64 // background rate B_i in CPM, ≥ 0
}

// String implements fmt.Stringer.
func (s Sensor) String() string {
	return fmt.Sprintf("sensor %d at %v (E=%.3g, B=%.3g CPM)", s.ID, s.Pos, s.Efficiency, s.Background)
}

// ExpectedCPM returns the sensor's expected reading for the given
// ground truth (Eq. 4).
func (s Sensor) ExpectedCPM(sources []radiation.Source, obstacles []radiation.Obstacle) float64 {
	return radiation.ExpectedCPM(s.Pos, s.Efficiency, s.Background, sources, obstacles)
}

// Measurement is a single reading delivered to the localizer.
type Measurement struct {
	SensorID int
	Pos      geometry.Vec // sensor position (sensors are at known locations)
	CPM      int          // observed counts per minute
	Step     int          // time step at which the reading was taken
}

// Measure draws one Poisson-distributed reading from the sensor given
// the true sources and obstacles.
func (s Sensor) Measure(stream *rng.Stream, sources []radiation.Source, obstacles []radiation.Obstacle, step int) Measurement {
	lambda := s.ExpectedCPM(sources, obstacles)
	return Measurement{
		SensorID: s.ID,
		Pos:      s.Pos,
		CPM:      stream.Poisson(lambda),
		Step:     step,
	}
}

// LogLikelihood returns log P(measurement | single hypothesized source),
// the obstacle-agnostic likelihood the particle filter evaluates: the
// expected CPM assumes free space (Eq. 1 into Eq. 4) because obstacle
// parameters are unknown to the system.
func (s Sensor) LogLikelihood(cpm int, hyp radiation.Source) float64 {
	lambda := radiation.ExpectedCPMSingle(s.Pos, s.Efficiency, s.Background, hyp)
	return stat.PoissonLogPMF(cpm, lambda)
}

// ErrNoReadings is returned by Calibrate when no readings are supplied.
var ErrNoReadings = errors.New("sensor: no calibration readings")

// Calibrate estimates a sensor's counting efficiency from repeated
// readings taken with a single known check source and no obstacles,
// following the calibration procedure referenced from Chin et al.
// (SenSys 2008): Ê = (mean(CPM) − B) / (2.22×10⁶ · I_FS).
func Calibrate(readings []int, sensorPos geometry.Vec, background float64, known radiation.Source) (float64, error) {
	if len(readings) == 0 {
		return 0, ErrNoReadings
	}
	intensity := radiation.FreeSpaceIntensity(sensorPos, known)
	if intensity <= 0 {
		return 0, fmt.Errorf("sensor: check source yields zero intensity at %v", sensorPos)
	}
	var sum float64
	for _, r := range readings {
		sum += float64(r)
	}
	mean := sum/float64(len(readings)) - background
	if mean < 0 {
		mean = 0
	}
	return mean / (radiation.CPMPerMicroCurie * intensity), nil
}

// Grid places nx × ny sensors in a uniform grid covering bounds
// (inclusive of the boundary rows/columns, as in the paper's layouts),
// all with the given efficiency and background.
func Grid(bounds geometry.Rect, nx, ny int, efficiency, background float64) []Sensor {
	if nx < 1 || ny < 1 {
		return nil
	}
	out := make([]Sensor, 0, nx*ny)
	id := 0
	for iy := 0; iy < ny; iy++ {
		for ix := 0; ix < nx; ix++ {
			fx, fy := 0.5, 0.5
			if nx > 1 {
				fx = float64(ix) / float64(nx-1)
			}
			if ny > 1 {
				fy = float64(iy) / float64(ny-1)
			}
			out = append(out, Sensor{
				ID: id,
				Pos: geometry.V(
					bounds.Min.X+fx*bounds.Width(),
					bounds.Min.Y+fy*bounds.Height(),
				),
				Efficiency: efficiency,
				Background: background,
			})
			id++
		}
	}
	return out
}

// PoissonField places n sensors uniformly at random in bounds — the
// homogeneous Poisson point process (conditioned on count n) used by
// the paper's Scenario C.
func PoissonField(bounds geometry.Rect, n int, stream *rng.Stream, efficiency, background float64) []Sensor {
	if n < 1 {
		return nil
	}
	out := make([]Sensor, n)
	for i := range out {
		out[i] = Sensor{
			ID: i,
			Pos: geometry.V(
				stream.Uniform(bounds.Min.X, bounds.Max.X),
				stream.Uniform(bounds.Min.Y, bounds.Max.Y),
			),
			Efficiency: efficiency,
			Background: background,
		}
	}
	return out
}

// PerturbEfficiencies applies a deterministic per-sensor efficiency
// variation of up to ±frac, modelling manufacturing differences. It
// mutates the slice in place and returns it.
func PerturbEfficiencies(sensors []Sensor, frac float64, stream *rng.Stream) []Sensor {
	for i := range sensors {
		sensors[i].Efficiency *= 1 + stream.Uniform(-frac, frac)
	}
	return sensors
}
