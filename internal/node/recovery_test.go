package node

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"radloc/internal/fusion"
	"radloc/internal/rng"
	"radloc/internal/scenario"
	"radloc/internal/sim"
	"radloc/internal/track"
	"radloc/internal/wal"
)

// TestCorruptTailRecovery: a torn final record plus a bit-flipped
// record must truncate cleanly at boot — reported, never fatal — and
// the daemon must serve normally afterward.
func TestCorruptTailRecovery(t *testing.T) {
	sc := scenario.A(50, false)
	const rounds, window = 6, 2
	build := func(j fusion.Journal) (*fusion.Engine, error) {
		fcfg := fusion.Config{
			Localizer:     sim.LocalizerConfig(sc),
			Sensors:       sc.Sensors,
			Tracking:      &track.Config{},
			Journal:       j,
			ReorderWindow: window,
		}
		fcfg.Localizer.Seed = 7
		return fusion.NewEngine(fcfg)
	}
	dir := t.TempDir()
	engine, d, err := openDurable(dir, nil, wal.FsyncNever, 50, 0, build, nil, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	stream := rng.NewNamed(3, "corrupt-tail/measure")
	for step := 0; step < rounds; step++ {
		for _, sen := range sc.Sensors {
			m := sen.Measure(stream, sc.Sources, nil, step)
			if _, err := engine.IngestSeq(fusion.Meas{SensorID: sen.ID, CPM: m.CPM, Step: step, Seq: uint64(step + 1)}); err != nil {
				t.Fatal(err)
			}
			d.maybeCheckpoint(io.Discard)
		}
	}
	// Rounds past the watermark are journaled; the held tail is not
	// durable by design (redelivery would restore it).
	journaled := (rounds - window) * len(sc.Sensors)
	// Crash: no d.close(), no final checkpoint. Flush OS buffers only.
	d.j.mu.Lock()
	if err := d.j.log.Sync(); err != nil {
		t.Fatal(err)
	}
	d.j.mu.Unlock()

	// Sabotage the newest segment: flip a byte mid-record, then tear
	// the final record. Also delete all checkpoints so recovery must
	// replay the surviving WAL from zero.
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.ndjson"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments: %v", err)
	}
	last := segs[len(segs)-1]
	blob, err := os.ReadFile(last)
	if err != nil {
		t.Fatal(err)
	}
	recs := bytes.SplitAfter(blob, []byte("\n")) // trailing "" element after the final newline
	flip := recs[len(recs)-3]                    // second-to-last record: bit-flip its middle
	flip[len(flip)/2] ^= 0x08
	torn := recs[len(recs)-2] // last record: tear it mid-line
	recs[len(recs)-2] = torn[:len(torn)-7]
	if err := os.WriteFile(last, bytes.Join(recs, nil), 0o644); err != nil {
		t.Fatal(err)
	}
	cks, _ := filepath.Glob(filepath.Join(dir, "checkpoint-*.json"))
	if len(cks) == 0 {
		t.Fatal("checkpoint cadence never fired")
	}
	for _, ck := range cks {
		os.Remove(ck)
	}

	engine2, d2, err := openDurable(dir, nil, wal.FsyncNever, 50, 0, build, nil, io.Discard)
	if err != nil {
		t.Fatalf("recovery must repair, not fail: %v", err)
	}
	st := statez(engine2, d2, nil)
	recov := st.Durability.Recovery
	if recov.TruncatedRecords == 0 {
		t.Errorf("corruption not reported: %+v", recov)
	}
	if recov.CheckpointUsed || recov.Replayed == 0 {
		t.Errorf("expected cold replay of the surviving WAL: %+v", recov)
	}
	if got := engine2.Snapshot().Ingested; got != uint64(journaled-2) {
		t.Errorf("recovered ingested = %d, want %d (bit-flipped + torn records lost)", got, journaled-2)
	}

	// And the daemon serves: snapshot, statez, fresh ingest.
	srv := httptest.NewServer(newMux(serveConfig{Engine: engine2, Durable: d2}))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/statez")
	if err != nil {
		t.Fatal(err)
	}
	var sz statezJSON
	if err := json.NewDecoder(resp.Body).Decode(&sz); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !sz.Durability.Enabled || sz.Durability.Recovery.TruncatedRecords == 0 {
		t.Errorf("/statez recovery report: %+v", sz.Durability)
	}
	body := fmt.Sprintf(`{"sensorId":%d,"cpm":40,"step":4,"seq":5}`, sc.Sensors[0].ID)
	resp, err = http.Post(srv.URL+"/measurements", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var ack map[string]int
	_ = json.NewDecoder(resp.Body).Decode(&ack)
	resp.Body.Close()
	if ack["accepted"] != 1 {
		t.Errorf("post-recovery ingest refused: %v", ack)
	}
	if err := d2.close(); err != nil {
		t.Fatal(err)
	}
}
