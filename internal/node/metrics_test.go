package node

// Observability integration test: a durable daemon takes a chaos-era
// delivery workload (fault-injected transport, redelivery, an agent
// restart), then GET /metrics must render valid Prometheus text whose
// counters agree with the JSON the same process serves on /statez —
// the two surfaces derive from one registry, so any disagreement is a
// wiring bug, not a race.

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	"radloc/internal/clock"
	"radloc/internal/fusion"
	"radloc/internal/httpingest"
	"radloc/internal/netchaos"
	"radloc/internal/obs"
	"radloc/internal/rng"
	"radloc/internal/scenario"
	"radloc/internal/sim"
	"radloc/internal/track"
	"radloc/internal/transport"
	"radloc/internal/wal"
)

// promSample is one parsed exposition line.
type promSample struct {
	name   string
	labels map[string]string
	value  float64
}

// promDump is a parsed /metrics response.
type promDump struct {
	types   map[string]string // family → counter|gauge|histogram
	helps   map[string]bool
	samples []promSample
}

// parseProm is a strict minimal parser for the Prometheus text
// format: every non-comment line must be `name[{labels}] value`,
// every sample must belong to a family declared with # TYPE, and
// every family must carry # HELP.
func parseProm(t *testing.T, body string) *promDump {
	t.Helper()
	d := &promDump{types: map[string]string{}, helps: map[string]bool{}}
	sc := bufio.NewScanner(strings.NewReader(body))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			f := strings.Fields(line)
			if len(f) < 4 {
				t.Fatalf("HELP line without text: %q", line)
			}
			d.helps[f[2]] = true
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			if len(f) != 4 {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			d.types[f[2]] = f[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		s, err := parsePromSample(line)
		if err != nil {
			t.Fatalf("%v in line %q", err, line)
		}
		d.samples = append(d.samples, s)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	// Every sample maps to a declared family with help text.
	for _, s := range d.samples {
		fam := s.name
		if typ, ok := d.types[fam]; ok {
			if typ == "histogram" {
				t.Errorf("bare sample %q for histogram family", s.name)
			}
		} else {
			base, suffix := splitHistogramSuffix(s.name)
			if base == "" || d.types[base] != "histogram" {
				t.Errorf("sample %q has no # TYPE declaration", s.name)
				continue
			}
			fam = base
			if suffix == "bucket" && s.labels["le"] == "" {
				t.Errorf("histogram bucket without le label: %q", s.name)
			}
		}
		if !d.helps[fam] {
			t.Errorf("family %q has no # HELP", fam)
		}
	}
	return d
}

// splitHistogramSuffix maps name_bucket/_sum/_count to its family.
func splitHistogramSuffix(name string) (base, suffix string) {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if strings.HasSuffix(name, suf) {
			return strings.TrimSuffix(name, suf), suf[1:]
		}
	}
	return "", ""
}

// parsePromSample parses `name[{k="v",...}] value`.
func parsePromSample(line string) (promSample, error) {
	s := promSample{labels: map[string]string{}}
	rest := line
	if i := strings.IndexAny(rest, "{ "); i < 0 {
		return s, fmt.Errorf("no value separator")
	} else {
		s.name = rest[:i]
		rest = rest[i:]
	}
	if strings.HasPrefix(rest, "{") {
		end := strings.Index(rest, "}")
		if end < 0 {
			return s, fmt.Errorf("unterminated label set")
		}
		for _, pair := range splitLabels(rest[1:end]) {
			k, v, ok := strings.Cut(pair, "=")
			if !ok || len(v) < 2 || v[0] != '"' || v[len(v)-1] != '"' {
				return s, fmt.Errorf("malformed label %q", pair)
			}
			s.labels[k] = strings.NewReplacer(`\"`, `"`, `\\`, `\`, `\n`, "\n").Replace(v[1 : len(v)-1])
		}
		rest = rest[end+1:]
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
	if err != nil {
		return s, fmt.Errorf("unparseable value: %v", err)
	}
	s.value = v
	return s, nil
}

// splitLabels splits on commas outside quotes.
func splitLabels(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	depth := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			if i == 0 || s[i-1] != '\\' {
				depth = !depth
			}
		case ',':
			if !depth {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	return append(out, s[start:])
}

// value returns the single sample with this exact name and labels
// (nil labels → any sample with the name, which must be unique).
func (d *promDump) value(t *testing.T, name string, labels map[string]string) float64 {
	t.Helper()
	var found []float64
	for _, s := range d.samples {
		if s.name != name {
			continue
		}
		if labels != nil {
			match := true
			for k, v := range labels {
				if s.labels[k] != v {
					match = false
				}
			}
			if !match {
				continue
			}
		}
		found = append(found, s.value)
	}
	if len(found) != 1 {
		t.Fatalf("want exactly one sample %s%v, got %d", name, labels, len(found))
	}
	return found[0]
}

// TestMetricsEndpointAgreesWithStatez runs a fault-injected delivery
// workload against a durable daemon sharing one registry, then checks
// that /metrics (a) parses as Prometheus text with counter, gauge and
// histogram families from the filter, ingest, transport-gate and WAL
// subsystems, and (b) numerically agrees with /statez.
func TestMetricsEndpointAgreesWithStatez(t *testing.T) {
	sc := scenario.A(50, false)
	reg := obs.NewRegistry()
	obs.RegisterProcessMetrics(reg, time.Unix(1_700_000_000, 0))
	build := func(j fusion.Journal) (*fusion.Engine, error) {
		fcfg := fusion.Config{
			Localizer:     sim.LocalizerConfig(sc),
			Sensors:       sc.Sensors,
			Tracking:      &track.Config{},
			Journal:       j,
			ReorderWindow: 2,
			Metrics:       reg,
		}
		fcfg.Localizer.Seed = 3
		fcfg.Localizer.Metrics = reg
		return fusion.NewEngine(fcfg)
	}
	engine, d, err := openDurable(t.TempDir(), nil, wal.FsyncNever, 50, 0, build, reg, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	clk := clock.NewFake(time.Unix(1_700_000_000, 0))
	ing := newIngest(engine, d, httpingest.Options{QueueDepth: 256, Clock: clk, Metrics: reg})

	// Chaos-era delivery: seeded request/response drops and a healed
	// partition manufacture retries and dedup-absorbed redelivery.
	faults := netchaos.New(localRT{ing}, netchaos.Config{
		Seed:         99,
		Clock:        clk,
		DropProb:     0.3,
		RespDropProb: 0.15,
		Latency:      20 * time.Millisecond,
		Partitions:   []netchaos.Window{{From: time.Second, To: 4 * time.Second}},
	})
	client, err := transport.NewClient(transport.Options{
		URL:       "http://fusion",
		HTTP:      faults,
		Clock:     clk,
		RNG:       rng.NewNamed(7, "metrics/agent"),
		BatchSize: chaosBatch,
		Backoff:   transport.Backoff{Base: 100 * time.Millisecond, Cap: 2 * time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, m := range chaosReadings(len(sc.Sensors)) {
		if err := client.Send(ctx, []transport.Reading{m}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := engine.FlushPending(); err != nil {
		t.Fatal(err)
	}
	engine.Refresh()
	if err := d.checkpoint(); err != nil {
		t.Fatal(err)
	}

	srv := httptest.NewServer(newMux(serveConfig{Engine: engine, Durable: d, Ingest: ing, Metrics: reg}))
	defer srv.Close()

	body := httpGetBody(t, srv.URL+"/metrics", "text/plain")
	dump := parseProm(t, body)

	// One family of each kind from each instrumented subsystem.
	wantTypes := map[string]string{
		"radloc_filter_stage_seconds":         "histogram",
		"radloc_filter_iterations_total":      "counter",
		"radloc_filter_particles":             "gauge",
		"radloc_fusion_ingested_total":        "counter",
		"radloc_fusion_refresh_seconds":       "histogram",
		"radloc_fusion_estimates":             "gauge",
		"radloc_ingest_requests_total":        "counter",
		"radloc_ingest_request_seconds":       "histogram",
		"radloc_ingest_inflight_requests":     "gauge",
		"radloc_transport_duplicates_total":   "counter",
		"radloc_transport_reorder_pending":    "gauge",
		"radloc_transport_release_batch_size": "histogram",
		"radloc_wal_appends_total":            "counter",
		"radloc_wal_append_seconds":           "histogram",
		"radloc_wal_offset":                   "gauge",
		"radloc_durable_checkpoints_total":    "counter",
		"radloc_process_uptime_seconds":       "gauge",
	}
	for fam, typ := range wantTypes {
		if got := dump.types[fam]; got != typ {
			t.Errorf("family %s: type %q, want %q", fam, got, typ)
		}
	}
	// Every filter stage must have observed work under its own label.
	for _, stage := range []string{"select", "predict", "weight", "resample", "estimate"} {
		if n := dump.value(t, "radloc_filter_stage_seconds_count", map[string]string{"stage": stage}); n == 0 {
			t.Errorf("filter stage %q never observed", stage)
		}
	}
	// Histogram invariant: the +Inf bucket equals the sample count.
	for fam, typ := range dump.types {
		if typ != "histogram" {
			continue
		}
		counts := map[string]float64{} // label-signature → count
		infs := map[string]float64{}   // label-signature → +Inf bucket
		for _, s := range dump.samples {
			sig := labelSig(s.labels)
			switch s.name {
			case fam + "_count":
				counts[sig] = s.value
			case fam + "_bucket":
				if s.labels["le"] == "+Inf" {
					delete(s.labels, "le")
					infs[labelSig(s.labels)] = s.value
				}
			}
		}
		for sig, n := range counts {
			if inf, ok := infs[sig]; !ok || math.Abs(inf-n) > 0 {
				t.Errorf("%s{%s}: +Inf bucket %v != count %v", fam, sig, inf, n)
			}
		}
	}

	// Numerical agreement with /statez — same registry, same numbers.
	var sz statezJSON
	if err := json.Unmarshal([]byte(httpGetBody(t, srv.URL+"/statez", "application/json")), &sz); err != nil {
		t.Fatal(err)
	}
	if sz.Ingress.Duplicates == 0 {
		t.Fatal("chaos run produced no redelivery — the agreement check would be vacuous")
	}
	agree := map[string]float64{
		"radloc_ingest_requests_total":      float64(sz.Ingress.Requests),
		"radloc_ingest_accepted_total":      float64(sz.Ingress.Accepted),
		"radloc_ingest_duplicates_total":    float64(sz.Ingress.Duplicates),
		"radloc_ingest_rejected_total":      float64(sz.Ingress.Rejected),
		"radloc_transport_duplicates_total": float64(sz.Delivery.Duplicates),
		"radloc_transport_buffered_total":   float64(sz.Delivery.Buffered),
		"radloc_fusion_journaled_records":   float64(sz.Journaled),
		"radloc_wal_offset":                 float64(sz.Durability.WalOffset),
		"radloc_durable_checkpoints_total":  float64(sz.Durability.Checkpoints),
	}
	for fam, want := range agree {
		if got := dump.value(t, fam, nil); got != want {
			t.Errorf("%s = %v, /statez says %v", fam, got, want)
		}
	}
}

// labelSig renders a label set as a canonical comparison key.
func labelSig(labels map[string]string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s=%s,", k, labels[k])
	}
	return b.String()
}

func httpGetBody(t *testing.T, url, wantCT string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, wantCT) {
		t.Fatalf("GET %s: Content-Type %q, want %q prefix", url, ct, wantCT)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}
