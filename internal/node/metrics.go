package node

import (
	"time"

	"radloc/internal/obs"
)

// durableMetrics is the checkpointer's registry wiring. The collectors
// are the checkpointer's accounting — /statez derives its durability
// numbers from them — so the JSON and Prometheus surfaces can never
// disagree. nil registries get a private one, as everywhere else.
type durableMetrics struct {
	checkpoints       *obs.Counter
	failures          *obs.Counter
	checkpointSeconds *obs.Histogram
	lastCheckpoint    *obs.Gauge
}

func newDurableMetrics(r *obs.Registry) *durableMetrics {
	if r == nil {
		r = obs.NewRegistry()
	}
	return &durableMetrics{
		checkpoints: r.Counter("radloc_durable_checkpoints_total",
			"Engine-state checkpoints written this run."),
		failures: r.Counter("radloc_durable_checkpoint_failures_total",
			"Checkpoint attempts that failed (the WAL keeps everything; retried on cadence)."),
		checkpointSeconds: r.Histogram("radloc_durable_checkpoint_seconds",
			"Wall-clock seconds per checkpoint: state export, WAL sync, atomic write, prune.", nil),
		lastCheckpoint: r.Gauge("radloc_durable_last_checkpoint_offset",
			"WAL offset covered by the newest checkpoint."),
	}
}

// done accounts one checkpoint attempt.
func (m *durableMetrics) done(t0 time.Time, applied uint64, err error) {
	m.checkpointSeconds.Observe(time.Since(t0).Seconds())
	if err != nil {
		m.failures.Inc()
		return
	}
	m.checkpoints.Inc()
	m.lastCheckpoint.Set(float64(applied))
}
