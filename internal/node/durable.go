package node

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"

	"radloc/internal/fusion"
	"radloc/internal/httpingest"
	"radloc/internal/obs"
	"radloc/internal/vfs"
	"radloc/internal/wal"
)

// walJournal bridges the fusion engine's write-ahead hook to the WAL.
// Append runs with the engine lock held, so WAL order is exactly the
// filter's application order; mu additionally serializes the log
// against the checkpointer's Sync/Prune and the scrubber's cold reads.
// Lock order is always engine.mu → walJournal.mu, never the reverse.
type walJournal struct {
	mu  sync.Mutex
	log *wal.Log
	// onResult, when set, observes every append outcome (outside mu) —
	// the degraded-mode tracker's entry and exit signal.
	onResult func(error)
}

func (j *walJournal) Append(m fusion.Meas) error {
	j.mu.Lock()
	_, err := j.log.Append(wal.Record{SensorID: m.SensorID, CPM: m.CPM, Step: m.Step, Seq: m.Seq})
	j.mu.Unlock()
	if j.onResult != nil {
		j.onResult(err)
	}
	return err
}

// recoveryJSON reports what boot-time recovery found and did — logged
// at startup and served on /statez for the life of the process.
type recoveryJSON struct {
	WalRecords       uint64 `json:"walRecords"`
	WalSegments      int    `json:"walSegments"`
	TruncatedRecords uint64 `json:"truncatedRecords,omitempty"`
	TruncatedBytes   int64  `json:"truncatedBytes,omitempty"`
	DroppedSegments  int    `json:"droppedSegments,omitempty"`
	// CheckpointUsed is true when a valid checkpoint seeded the engine;
	// CheckpointDiscarded when one existed but its state would not
	// import (recovery fell back to replaying the whole surviving WAL).
	CheckpointUsed      bool   `json:"checkpointUsed"`
	CheckpointApplied   uint64 `json:"checkpointApplied,omitempty"`
	CheckpointDiscarded bool   `json:"checkpointDiscarded,omitempty"`
	// Replayed is the number of WAL records re-applied at boot.
	Replayed uint64 `json:"replayed"`
}

// durable owns radlocd's durability plumbing: the WAL, the checkpoint
// cadence, the recovery report, and the zone's storage-health state
// (see storage.go for the degraded-mode machinery).
type durable struct {
	dir    string
	fs     vfs.FS
	fsync  wal.FsyncPolicy
	every  int // checkpoint every N journaled records; 0 = shutdown only
	engine *fusion.Engine
	j      *walJournal
	logw   io.Writer

	// met holds the checkpoint counters and timing — the registry
	// collectors are the source of truth; statez reads them.
	met *durableMetrics

	mu          sync.Mutex
	busy        bool   // a checkpoint is in flight; skip, don't queue
	lastApplied uint64 // newest checkpoint's WAL offset
	prevApplied uint64 // second-newest — segments below it are prunable
	recovery    recoveryJSON

	// Degraded read-only mode: set on the first failed journal append,
	// cleared by the first success (organic traffic or the probe loop).
	degraded       bool
	degradedSince  time.Time
	lastStorageErr string
	degradedTotal  uint64 // times this zone entered degraded mode
}

// openDurable opens (or cold-starts) the durability directory and
// returns a recovered engine: newest valid checkpoint imported, WAL
// suffix replayed through the live ingest path, torn tails truncated.
// Bad data on disk is repaired and reported, never fatal — the daemon
// must come up. build constructs a fresh engine wired to the given
// journal; it may be called twice if a checkpoint turns out to be
// unusable.
func openDurable(dir string, fsys vfs.FS, pol wal.FsyncPolicy, every, segRecords int,
	build func(fusion.Journal) (*fusion.Engine, error), reg *obs.Registry, logw io.Writer) (*fusion.Engine, *durable, error) {

	fsys = vfs.Or(fsys)
	l, stats, err := wal.Open(dir, wal.Options{Fsync: pol, Metrics: reg, FS: fsys, SegmentRecords: segRecords})
	if err != nil {
		return nil, nil, fmt.Errorf("open WAL %s: %w", dir, err)
	}
	j := &walJournal{log: l}
	engine, err := build(j)
	if err != nil {
		l.Close()
		return nil, nil, err
	}
	d := &durable{dir: dir, fs: fsys, fsync: pol, every: every, engine: engine, j: j, logw: logw, met: newDurableMetrics(reg)}
	j.onResult = d.noteAppend
	if reg != nil {
		reg.GaugeFunc("radloc_storage_degraded",
			"1 while the zone's WAL is unwritable and ingest answers 507 (read-only mode).",
			func() float64 {
				if d.storageDegraded() {
					return 1
				}
				return 0
			})
	}
	d.recovery = recoveryJSON{
		WalRecords:       stats.Records,
		WalSegments:      stats.Segments,
		TruncatedRecords: stats.TruncatedRecords,
		TruncatedBytes:   stats.TruncatedBytes,
		DroppedSegments:  stats.DroppedSegments,
	}

	replayFrom := uint64(0)
	if ck, ok, lerr := wal.LoadCheckpointFS(fsys, dir); lerr != nil {
		l.Close()
		return nil, nil, lerr
	} else if ok {
		var st fusion.EngineState
		ierr := json.Unmarshal(ck.State, &st)
		if ierr == nil {
			ierr = engine.ImportState(st)
		}
		if ierr != nil {
			// A checkpoint that will not import must not poison boot:
			// fall back to a fresh engine and replay the whole WAL.
			fmt.Fprintf(logw, "radlocd: discarding unusable checkpoint (applied %d): %v\n", ck.Applied, ierr)
			d.recovery.CheckpointDiscarded = true
			if engine, err = build(j); err != nil {
				l.Close()
				return nil, nil, err
			}
			d.engine = engine
		} else {
			d.recovery.CheckpointUsed = true
			d.recovery.CheckpointApplied = ck.Applied
			d.lastApplied = ck.Applied
			replayFrom = ck.Applied
		}
	}
	if replayFrom > l.Offset() {
		// The checkpoint outlived the WAL tail (corruption truncated
		// records it had already covered): fast-forward the log so new
		// records never reuse offsets the checkpoint claims.
		if err := l.AlignTo(replayFrom); err != nil {
			l.Close()
			return nil, nil, err
		}
	}
	if err := l.Replay(replayFrom, func(off uint64, rec wal.Record) error {
		engine.Replay(fusion.Meas{SensorID: rec.SensorID, CPM: rec.CPM, Step: rec.Step, Seq: rec.Seq})
		d.recovery.Replayed++
		return nil
	}); err != nil {
		l.Close()
		return nil, nil, fmt.Errorf("replay WAL %s: %w", dir, err)
	}
	// From here on the engine's journal counter IS the WAL offset; each
	// Append advances both in lockstep.
	engine.SetJournalOffset(l.Offset())
	fmt.Fprintf(logw, "radlocd: durability on (%s, fsync=%s): %d WAL records, checkpoint@%d used=%v, %d replayed, %d truncated\n",
		dir, pol, d.recovery.WalRecords, d.recovery.CheckpointApplied, d.recovery.CheckpointUsed,
		d.recovery.Replayed, d.recovery.TruncatedRecords)
	return engine, d, nil
}

// maybeCheckpoint writes a checkpoint if the WAL has grown past the
// cadence since the last one. Called outside the engine lock, after
// ingests; a failure is reported but does not stop ingest (the WAL
// still has everything).
func (d *durable) maybeCheckpoint(logw io.Writer) {
	if d == nil || d.every <= 0 {
		return
	}
	d.j.mu.Lock()
	off := d.j.log.Offset()
	d.j.mu.Unlock()
	d.mu.Lock()
	if d.busy || off < d.lastApplied+uint64(d.every) {
		d.mu.Unlock()
		return
	}
	d.busy = true
	d.mu.Unlock()
	err := d.checkpoint()
	d.mu.Lock()
	d.busy = false
	d.mu.Unlock()
	if err != nil {
		fmt.Fprintf(logw, "radlocd: checkpoint failed (WAL intact, will retry): %v\n", err)
	}
}

// checkpoint persists the engine state: export under the engine lock,
// sync the WAL through the exported offset (a checkpoint must never
// run ahead of the durable log), write atomically, prune what the
// surviving checkpoints no longer need.
func (d *durable) checkpoint() (err error) {
	t0 := time.Now()
	st, err := d.engine.ExportState()
	defer func() { d.met.done(t0, st.Journaled, err) }()
	if err != nil {
		return err
	}
	blob, err := json.Marshal(st)
	if err != nil {
		return err
	}
	d.j.mu.Lock()
	err = d.j.log.Sync()
	d.j.mu.Unlock()
	if err != nil {
		return err
	}
	if err := wal.WriteCheckpointFS(d.fs, d.dir, wal.Checkpoint{Applied: st.Journaled, State: blob}); err != nil {
		return err
	}
	_ = wal.PruneCheckpointsFS(d.fs, d.dir, 2)
	d.mu.Lock()
	if st.Journaled != d.lastApplied {
		d.prevApplied = d.lastApplied
		d.lastApplied = st.Journaled
	}
	pruneTo := d.prevApplied
	d.mu.Unlock()
	d.j.mu.Lock()
	err = d.j.log.Prune(pruneTo)
	d.j.mu.Unlock()
	return err
}

// close flushes everything: final checkpoint, then sync and close the
// WAL. Called on graceful shutdown; after a crash, recovery does the
// equivalent from disk.
func (d *durable) close() error {
	if d == nil {
		return nil
	}
	err := d.checkpoint()
	d.j.mu.Lock()
	cerr := d.j.log.Close()
	d.j.mu.Unlock()
	if err == nil {
		err = cerr
	}
	return err
}

// statezJSON is the /statez payload: durability + delivery +
// admission (backpressure) posture.
type statezJSON struct {
	Durability durabilityJSON       `json:"durability"`
	Delivery   fusion.DeliveryStats `json:"delivery"`
	Ingress    fusion.IngressStats  `json:"ingress"`
	Journaled  uint64               `json:"journaled"`
}

type durabilityJSON struct {
	Enabled        bool          `json:"enabled"`
	WalDir         string        `json:"walDir,omitempty"`
	Fsync          string        `json:"fsync,omitempty"`
	WalOffset      uint64        `json:"walOffset,omitempty"`
	Checkpoints    uint64        `json:"checkpoints"`
	LastCheckpoint uint64        `json:"lastCheckpoint"`
	Recovery       *recoveryJSON `json:"recovery,omitempty"`
	// Degraded is true while the zone's WAL is unwritable: ingest
	// answers 507 + Retry-After (agents spool) until a write or probe
	// succeeds again.
	Degraded       bool      `json:"degraded,omitempty"`
	DegradedSince  time.Time `json:"degradedSince,omitempty"`
	LastStorageErr string    `json:"lastStorageErr,omitempty"`
	// DegradedTotal counts how many times this zone has entered
	// degraded mode over the process lifetime.
	DegradedTotal uint64 `json:"degradedTotal,omitempty"`
}

// statez assembles the /statez payload; d may be nil (durability
// off), ing may be nil (pipe mode, no HTTP ingest).
func statez(engine *fusion.Engine, d *durable, ing *httpingest.Handler) statezJSON {
	s := engine.Snapshot()
	out := statezJSON{Delivery: s.Delivery, Journaled: s.Journaled}
	if ing != nil {
		out.Ingress = ing.Stats()
	}
	if d == nil {
		return out
	}
	d.j.mu.Lock()
	off := d.j.log.Offset()
	d.j.mu.Unlock()
	d.mu.Lock()
	rec := d.recovery
	out.Durability = durabilityJSON{
		Enabled:        true,
		WalDir:         d.dir,
		Fsync:          d.fsync.String(),
		WalOffset:      off,
		Checkpoints:    d.met.checkpoints.Value(),
		LastCheckpoint: d.lastApplied,
		Recovery:       &rec,
		Degraded:       d.degraded,
		DegradedTotal:  d.degradedTotal,
		LastStorageErr: d.lastStorageErr,
	}
	if d.degraded {
		out.Durability.DegradedSince = d.degradedSince
	}
	d.mu.Unlock()
	return out
}
