package node

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"radloc/internal/cluster"
	"radloc/internal/fusion"
	"radloc/internal/vfs"
	"radloc/internal/wal"
	"radloc/internal/zone"
)

// zoneBackend implements cluster.Backend over one zone's engine and
// durability plumbing. Each cluster operation resolves a fresh
// backend through clusterBackend, so an evicted-and-recreated zone is
// always addressed through its live incarnation.
type zoneBackend struct {
	zs *zoneSet
	z  *zone.Zone
}

// clusterBackend is the cluster.BackendResolver: it routes through
// the zone manager, so a replication target instantiates (and
// recovers from its own WAL) exactly like a write target would.
func (zs *zoneSet) clusterBackend(name string) (cluster.Backend, error) {
	z, err := zs.manager.Get(name)
	if err != nil {
		return nil, err
	}
	return &zoneBackend{zs: zs, z: z}, nil
}

// Offset implements cluster.Backend: the WAL head when durability is
// on, the engine's journal counter otherwise (they advance in
// lockstep; without a log the counter is all there is).
func (b *zoneBackend) Offset() uint64 {
	if d := zoneDurable(b.z); d != nil {
		d.j.mu.Lock()
		defer d.j.mu.Unlock()
		return d.j.log.Offset()
	}
	return b.z.Engine().Snapshot().Journaled
}

// Oldest implements cluster.Backend. Without a log nothing historical
// is servable, so Oldest equals the head and any lagging replica is
// pushed onto the snapshot-bootstrap path.
func (b *zoneBackend) Oldest() uint64 {
	if d := zoneDurable(b.z); d != nil {
		d.j.mu.Lock()
		defer d.j.mu.Unlock()
		return d.j.log.Oldest()
	}
	return b.z.Engine().Snapshot().Journaled
}

// errStopRead is the sentinel ReadWAL uses to stop Replay at max
// records; it never escapes.
var errStopRead = fmt.Errorf("stop")

// ReadWAL implements cluster.Backend by streaming the zone's log.
func (b *zoneBackend) ReadWAL(from uint64, max int, fn func(off uint64, rec wal.Record) error) error {
	d := zoneDurable(b.z)
	if d == nil {
		if from >= b.Offset() {
			return nil
		}
		return cluster.ErrPruned
	}
	d.j.mu.Lock()
	defer d.j.mu.Unlock()
	if from < d.j.log.Oldest() {
		return cluster.ErrPruned
	}
	n := 0
	err := d.j.log.Replay(from, func(off uint64, rec wal.Record) error {
		if n >= max {
			return errStopRead
		}
		n++
		return fn(off, rec)
	})
	if err == errStopRead {
		return nil
	}
	return err
}

// SetRetainFloor implements cluster.Backend; a no-op without a log.
func (b *zoneBackend) SetRetainFloor(off uint64) {
	if d := zoneDurable(b.z); d != nil {
		d.j.mu.Lock()
		d.j.log.SetRetain(off)
		d.j.mu.Unlock()
	}
}

// ApplyRecords implements cluster.Backend by handing the replicated
// records to the write pipeline's lower half — the same journal-then-
// replay path boot recovery uses, which is what makes a caught-up
// standby bit-identical to its primary.
func (b *zoneBackend) ApplyRecords(recs []cluster.RecordAt) error {
	return b.zs.pipe.Apply(b.z, recs)
}

// ExportState implements cluster.Backend.
func (b *zoneBackend) ExportState() (json.RawMessage, uint64, error) {
	st, err := b.z.Engine().ExportState()
	if err != nil {
		return nil, 0, err
	}
	blob, err := json.Marshal(st)
	if err != nil {
		return nil, 0, err
	}
	return blob, st.Journaled, nil
}

// Bootstrap implements cluster.Backend: import the shipped state,
// fast-forward the local log to the offset it covers, and checkpoint
// immediately so a crash right after recovers into the snapshot, not
// an empty zone.
func (b *zoneBackend) Bootstrap(state json.RawMessage, applied uint64) error {
	var st fusion.EngineState
	if err := json.Unmarshal(state, &st); err != nil {
		return fmt.Errorf("bootstrap state: %w", err)
	}
	eng := b.z.Engine()
	if err := eng.ImportState(st); err != nil {
		return err
	}
	d := zoneDurable(b.z)
	if d == nil {
		return nil
	}
	d.j.mu.Lock()
	err := d.j.log.AlignTo(applied)
	d.j.mu.Unlock()
	if err != nil {
		return err
	}
	return d.checkpoint()
}

// Checkpoint implements cluster.Backend; a no-op without durability.
func (b *zoneBackend) Checkpoint() error {
	if d := zoneDurable(b.z); d != nil {
		return d.checkpoint()
	}
	return nil
}

// divergedDirName is where divergence repair parks the quarantined WAL
// suffix and any checkpoints that cover it, inside the zone's WAL
// directory.
const divergedDirName = "diverged"

// QuarantineDiverged implements cluster.Backend: the WAL suffix at or
// above floor is moved into <wal-dir>/diverged/ together with every
// checkpoint whose state already includes those records, and the log
// is truncated so the snapshot bootstrap that follows re-seeds from a
// clean prefix. Nothing is deleted — the quarantined files are the
// operator's evidence of what the old primary accepted after losing
// ownership (see the diverged/ runbook in the README). Without
// durability there is nothing on disk to preserve; the engine's
// journal counter is rewound and the bootstrap replaces its state.
func (b *zoneBackend) QuarantineDiverged(floor uint64) (uint64, error) {
	d := zoneDurable(b.z)
	if d == nil {
		cur := b.z.Engine().Snapshot().Journaled
		if cur <= floor {
			return 0, nil
		}
		b.z.Engine().SetJournalOffset(floor)
		return cur - floor, nil
	}
	divDir := filepath.Join(d.dir, divergedDirName)
	d.j.mu.Lock()
	moved, err := d.j.log.QuarantineSuffix(floor, divDir)
	d.j.mu.Unlock()
	if err != nil {
		return moved, err
	}
	movedCkpts, err := wal.MoveCheckpoints(d.dir, floor, divDir)
	if err != nil {
		return moved, err
	}
	// Forget checkpoint bookkeeping above the floor, so the next
	// checkpoint's prune floor cannot outrun the truncated log.
	d.mu.Lock()
	if d.lastApplied > floor {
		d.lastApplied = 0
	}
	if d.prevApplied > floor {
		d.prevApplied = 0
	}
	d.mu.Unlock()
	if moved > 0 || movedCkpts > 0 {
		writeDivergedNote(d.fs, divDir, floor, moved, movedCkpts)
		fmt.Fprintf(b.zs.logw, "radlocd: zone %q quarantined %d diverged WAL records and %d checkpoints into %s (floor %d)\n",
			b.z.Name(), moved, movedCkpts, divDir, floor)
	}
	return moved, nil
}

// writeDivergedNote drops a marker file next to the quarantined data
// so an operator finding the directory later knows when the repair
// ran, where the live log resumed, and how much was set aside.
// Best-effort: a failed note never fails the repair itself.
func writeDivergedNote(fsys vfs.FS, divDir string, floor, records uint64, ckpts int) {
	note := struct {
		Floor       uint64    `json:"floor"`
		Records     uint64    `json:"records"`
		Checkpoints int       `json:"checkpoints,omitempty"`
		At          time.Time `json:"at"`
	}{floor, records, ckpts, time.Now().UTC()}
	blob, err := json.MarshalIndent(note, "", "  ")
	if err != nil {
		return
	}
	name := fmt.Sprintf("DIVERGED-%016x.json", floor)
	path := filepath.Join(divDir, name)
	for i := 1; i < 1000; i++ {
		if _, err := fsys.Lstat(path); os.IsNotExist(err) {
			break
		}
		path = filepath.Join(divDir, fmt.Sprintf("%s.%d", name, i))
	}
	_ = vfs.WriteFile(fsys, path, append(blob, '\n'), 0o644)
}

// epochFileName holds a zone's fencing epoch next to its WAL.
const epochFileName = "cluster-epoch.json"

// fileEpochStore persists per-zone fencing epochs in each zone's WAL
// directory, written atomically (tmp + rename) like checkpoints are.
// A node that was demoted and then restarts must not come back
// believing its old epoch.
type fileEpochStore struct {
	zs *zoneSet
}

// Load implements cluster.EpochStore; a missing file is a zero meta
// (the cluster layer treats that as epoch 1 with no history). A file
// from before epoch-start history — bare {"epoch":N} — parses fine,
// and the cluster layer anchors its history conservatively at 0.
func (s *fileEpochStore) Load(zone string) (cluster.EpochMeta, error) {
	path := filepath.Join(s.zs.zoneWalDir(zone), epochFileName)
	raw, err := s.zs.fs.ReadFile(path)
	if os.IsNotExist(err) {
		return cluster.EpochMeta{}, nil
	}
	if err != nil {
		return cluster.EpochMeta{}, err
	}
	var meta cluster.EpochMeta
	if err := json.Unmarshal(raw, &meta); err != nil {
		// A torn or truncated epoch file must not block boot, but it must
		// not be silently destroyed either: quarantine it aside and start
		// at epoch 0 — the node rejoins humbly and adopts the cluster's
		// current epoch on first contact.
		bad := path + ".bad"
		if rerr := s.zs.fs.Rename(path, bad); rerr != nil {
			bad = fmt.Sprintf("nowhere (rename failed: %v)", rerr)
		}
		fmt.Fprintf(s.zs.logw, "radlocd: corrupt %s for zone %q moved to %s, starting at epoch 0: %v\n",
			epochFileName, zone, bad, err)
		return cluster.EpochMeta{}, nil
	}
	return meta, nil
}

// Save implements cluster.EpochStore.
func (s *fileEpochStore) Save(zone string, meta cluster.EpochMeta) error {
	dir := s.zs.zoneWalDir(zone)
	if err := s.zs.fs.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	blob, err := json.Marshal(meta)
	if err != nil {
		return err
	}
	tmp := filepath.Join(dir, epochFileName+".tmp")
	if err := vfs.WriteFile(s.zs.fs, tmp, blob, 0o644); err != nil {
		return err
	}
	return s.zs.fs.Rename(tmp, filepath.Join(dir, epochFileName))
}

// routesFileName persists the learned routing table at the WAL root.
// The static -cluster-routes file is only the seed; ownership moves
// learned from peers must survive a restart, or a rebooted node would
// come back believing a stale topology.
const routesFileName = "cluster-routes.json"

// fileRouteStore persists the learned routing table in one directory
// (the WAL root), written atomically like the epoch file.
type fileRouteStore struct {
	dir  string
	fs   vfs.FS
	logw io.Writer
}

// Load implements cluster.RouteStore; a missing file is an empty
// table. A corrupt file is quarantined to .bad and treated as empty —
// the table is re-learned from peers, so losing the cache is safe.
func (s *fileRouteStore) Load() (cluster.Routes, error) {
	path := filepath.Join(s.dir, routesFileName)
	raw, err := vfs.Or(s.fs).ReadFile(path)
	if os.IsNotExist(err) {
		return cluster.Routes{}, nil
	}
	if err != nil {
		return cluster.Routes{}, err
	}
	var r cluster.Routes
	if err := json.Unmarshal(raw, &r); err != nil {
		_ = vfs.Or(s.fs).Rename(path, path+".bad")
		fmt.Fprintf(s.logw, "radlocd: corrupt %s moved to %s.bad, relearning routes from peers: %v\n",
			routesFileName, path, err)
		return cluster.Routes{}, nil
	}
	return r, nil
}

// Save implements cluster.RouteStore.
func (s *fileRouteStore) Save(r cluster.Routes) error {
	fsys := vfs.Or(s.fs)
	if err := fsys.MkdirAll(s.dir, 0o755); err != nil {
		return err
	}
	blob, err := json.Marshal(r)
	if err != nil {
		return err
	}
	tmp := filepath.Join(s.dir, routesFileName+".tmp")
	if err := vfs.WriteFile(fsys, tmp, blob, 0o644); err != nil {
		return err
	}
	return fsys.Rename(tmp, filepath.Join(s.dir, routesFileName))
}
