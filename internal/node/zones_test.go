package node

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"radloc/internal/fusion"
	"radloc/internal/httpingest"
	"radloc/internal/obs"
	"radloc/internal/scenario"
	"radloc/internal/sim"
	"radloc/internal/wal"
	"radloc/internal/zone"
)

// testZoneBuild is the per-zone engine constructor the tests share —
// the same shape run() wires, shrunk for speed.
func testZoneBuild(t *testing.T) func(fusion.Journal, *obs.Registry) (*fusion.Engine, error) {
	t.Helper()
	sc := scenario.A(50, false)
	return func(j fusion.Journal, met *obs.Registry) (*fusion.Engine, error) {
		fcfg := fusion.Config{
			Localizer: sim.LocalizerConfig(sc),
			Sensors:   sc.Sensors,
			Journal:   j,
			Metrics:   met,
		}
		fcfg.Localizer.Seed = 5
		fcfg.Localizer.NumParticles = 400
		return fusion.NewEngine(fcfg)
	}
}

// testZoneSet builds a recovered zoneSet over Scenario A; walRoot ""
// disables durability.
func testZoneSet(t *testing.T, walRoot string, ckptEvery int, idle time.Duration) *zoneSet {
	t.Helper()
	zs, err := newZoneSet(zoneSetOptions{
		WalRoot: walRoot, Fsync: wal.FsyncNever, CkptEvery: ckptEvery,
		IdleAfter: idle, Metrics: obs.NewRegistry(), Log: io.Discard,
		Build: testZoneBuild(t),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := zs.recoverZones(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = zs.close() })
	return zs
}

func zonedTestServer(t *testing.T, zs *zoneSet) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(newMux(serveConfig{
		Engine: zs.defaultZone().Engine(),
		Ingest: newZonedIngest(zs.pipe, httpingest.Options{}),
		Zones:  zs,
	}))
	t.Cleanup(srv.Close)
	return srv
}

func postJSON(t *testing.T, url, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func getBody(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

func TestZoneRoutesEndToEnd(t *testing.T) {
	zs := testZoneSet(t, "", 0, 0)
	srv := zonedTestServer(t, zs)

	if resp := postJSON(t, srv.URL+"/zones/east/measurements",
		`[{"sensorId":0,"cpm":9},{"sensorId":1,"cpm":7}]`); resp.StatusCode != http.StatusOK {
		t.Fatalf("post to zone east = %d", resp.StatusCode)
	}
	if resp := postJSON(t, srv.URL+"/measurements", `{"sensorId":0,"cpm":9}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("post to legacy route = %d", resp.StatusCode)
	}

	code, body := getBody(t, srv.URL+"/zones")
	if code != http.StatusOK {
		t.Fatalf("GET /zones = %d", code)
	}
	var zl struct {
		Zones []string `json:"zones"`
	}
	if err := json.Unmarshal([]byte(body), &zl); err != nil {
		t.Fatal(err)
	}
	if want := []string{zone.DefaultZone, "east"}; len(zl.Zones) != 2 || zl.Zones[0] != want[0] || zl.Zones[1] != want[1] {
		t.Fatalf("zones = %v, want %v", zl.Zones, want)
	}

	code, body = getBody(t, srv.URL+"/zones/east/snapshot")
	if code != http.StatusOK {
		t.Fatalf("GET /zones/east/snapshot = %d", code)
	}
	var snap snapshotJSON
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Ingested != 2 {
		t.Fatalf("east ingested = %d, want 2", snap.Ingested)
	}

	// The unnamed routes alias the default zone byte-for-byte.
	_, legacy := getBody(t, srv.URL+"/snapshot")
	_, aliased := getBody(t, srv.URL+"/zones/default/snapshot")
	if legacy != aliased {
		t.Fatalf("/snapshot and /zones/default/snapshot disagree:\n%s\n%s", legacy, aliased)
	}

	// Read routes never conjure zones: absent is 404, ill-formed is 400.
	if code, _ := getBody(t, srv.URL+"/zones/west/snapshot"); code != http.StatusNotFound {
		t.Fatalf("GET absent zone = %d, want 404", code)
	}
	if _, ok := zs.manager.Lookup("west"); ok {
		t.Fatal("read route conjured zone west")
	}
	if code, _ := getBody(t, srv.URL+"/zones/NOPE/snapshot"); code != http.StatusBadRequest {
		t.Fatalf("GET bad zone name = %d, want 400", code)
	}

	for _, ep := range []string{"stats", "sensors", "statez"} {
		if code, _ := getBody(t, srv.URL+"/zones/east/"+ep); code != http.StatusOK {
			t.Fatalf("GET /zones/east/%s = %d", ep, code)
		}
	}
}

func TestMultiZoneRecovery(t *testing.T) {
	dir := t.TempDir()
	zs := testZoneSet(t, dir, 5, 0)
	sc := scenario.A(50, false)
	lines := seqMeasurementsNDJSON(t, sc, 3)

	zones := []string{zone.DefaultZone, "east", "west"}
	engines := map[string]*fusion.Engine{}
	for zi, name := range zones {
		// Distinct streams per zone: offset which lines each zone gets.
		for i, line := range lines {
			if i%len(zones) != zi {
				continue
			}
			var m measurementJSON
			if err := json.Unmarshal([]byte(line), &m); err != nil {
				t.Fatal(err)
			}
			if _, err := zs.manager.Submit(context.Background(), name, []fusion.Meas{m.Meas()}); err != nil {
				t.Fatalf("submit to %s: %v", name, err)
			}
		}
		z, _ := zs.manager.Lookup(name)
		engines[name] = z.Engine()
	}
	if err := zs.close(); err != nil {
		t.Fatal(err)
	}
	// After close, each engine holds its flushed final state — what the
	// final checkpoint recorded and reboot must reproduce.
	want := map[string][]byte{}
	for name, e := range engines {
		st, err := e.ExportState()
		if err != nil {
			t.Fatal(err)
		}
		blob, err := json.Marshal(st)
		if err != nil {
			t.Fatal(err)
		}
		want[name] = blob
	}

	// The on-disk layout: default zone at the root, named zones under
	// zones/<name>.
	for _, name := range []string{"east", "west"} {
		if _, err := os.Stat(filepath.Join(dir, "zones", name)); err != nil {
			t.Fatalf("zone %s WAL dir: %v", name, err)
		}
	}

	// Reboot: every zone on disk comes back with identical state.
	zs2 := testZoneSet(t, dir, 5, 0)
	names := zs2.manager.Names()
	if len(names) != 3 || names[0] != "default" || names[1] != "east" || names[2] != "west" {
		t.Fatalf("recovered zones = %v, want [default east west]", names)
	}
	for _, name := range zones {
		z, _ := zs2.manager.Lookup(name)
		st, err := z.Engine().ExportState()
		if err != nil {
			t.Fatal(err)
		}
		got, err := json.Marshal(st)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(want[name]) {
			t.Errorf("zone %s: recovered state differs from pre-shutdown state", name)
		}
	}
}

func TestPipeZoneRouting(t *testing.T) {
	zs := testZoneSet(t, "", 0, 0)
	input := strings.Join([]string{
		`{"sensorId":0,"cpm":9}`,
		`{"sensorId":1,"cpm":7}`,
		`{"sensorId":0,"cpm":9,"zone":"east"}`,
		`{"sensorId":1,"cpm":7,"zone":"east"}`,
		`{"sensorId":0,"cpm":9,"zone":"Bad Zone!"}`,
		`this is not json`,
	}, "\n") + "\n"

	var out strings.Builder
	if err := servePipe(context.Background(), zs, strings.NewReader(input), &out, 2, 16); err != nil {
		t.Fatal(err)
	}
	snap := lastSnapshotLine(t, out.String())
	if snap.Ingested != 2 {
		t.Fatalf("default zone ingested = %d, want 2 (zone-stamped readings must not leak)", snap.Ingested)
	}
	if snap.Malformed != 1 {
		t.Fatalf("malformed = %d, want 1", snap.Malformed)
	}
	if snap.ZoneRefused != 1 {
		t.Fatalf("zoneRefused = %d, want 1", snap.ZoneRefused)
	}
	east, ok := zs.manager.Lookup("east")
	if !ok {
		t.Fatal("zone east was not created by the pipe stream")
	}
	if got := east.Engine().Snapshot().Ingested; got != 2 {
		t.Fatalf("east ingested = %d, want 2", got)
	}
}

// TestPipeDefaultZoneBitIdentical proves the sharded pipe path is a
// refactor, not a behavior change: a legacy (unstamped) stream driven
// through servePipe leaves the default zone in byte-identical state —
// RNG position included — to the pre-sharding loop (IngestSeq per
// line, FlushPending + Refresh at EOF) over the same engine config.
func TestPipeDefaultZoneBitIdentical(t *testing.T) {
	build := testZoneBuild(t)
	sc := scenario.A(50, false)
	lines := seqMeasurementsNDJSON(t, sc, 4)
	input := strings.Join(lines, "\n") + "\n"

	ref, err := build(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range lines {
		var m measurementJSON
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatal(err)
		}
		_, _ = ref.IngestSeq(m.Meas())
	}
	_, _ = ref.FlushPending()
	ref.Refresh()
	wantState, err := ref.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(wantState)
	if err != nil {
		t.Fatal(err)
	}

	zs := testZoneSet(t, "", 0, 0)
	var out strings.Builder
	if err := servePipe(context.Background(), zs, strings.NewReader(input), &out, len(sc.Sensors), 4096); err != nil {
		t.Fatal(err)
	}
	gotState, err := zs.defaultZone().Engine().ExportState()
	if err != nil {
		t.Fatal(err)
	}
	got, err := json.Marshal(gotState)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatal("default zone state after servePipe differs from the pre-sharding ingest loop")
	}
}

// TestZoneChurnUnderConcurrentTraffic hammers the HTTP surface while
// an evictor sweeps zones out from under it: writers must never see an
// error (eviction races resolve by recreation, with state restored
// from each zone's final checkpoint) and readers must only ever see a
// clean 200 or 404. Run with -race.
func TestZoneChurnUnderConcurrentTraffic(t *testing.T) {
	zs := testZoneSet(t, t.TempDir(), 5, 10*time.Millisecond)
	srv := zonedTestServer(t, zs)
	zones := []string{"z0", "z1", "z2", "z3"}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				name := zones[(w+i)%len(zones)]
				resp := postJSON(t, srv.URL+"/zones/"+name+"/measurements",
					fmt.Sprintf(`{"sensorId":%d,"cpm":9}`, i%4))
				if resp.StatusCode != http.StatusOK {
					t.Errorf("post to %s = %d", name, resp.StatusCode)
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			name := zones[i%len(zones)]
			if code, _ := getBody(t, srv.URL+"/zones/"+name+"/snapshot"); code != http.StatusOK && code != http.StatusNotFound {
				t.Errorf("GET %s snapshot = %d", name, code)
				return
			}
		}
	}()
	deadline := time.After(300 * time.Millisecond)
	for done := false; !done; {
		select {
		case <-deadline:
			done = true
		default:
			// Force-evict everything idle at an hour in the future: every
			// named zone qualifies the moment its mailbox drains.
			zs.manager.SweepIdle(time.Now().Add(time.Hour))
		}
	}
	close(stop)
	wg.Wait()

	// The surface is still coherent: one more write and read per zone.
	for _, name := range zones {
		if resp := postJSON(t, srv.URL+"/zones/"+name+"/measurements", `{"sensorId":0,"cpm":9}`); resp.StatusCode != http.StatusOK {
			t.Fatalf("post-churn write to %s = %d", name, resp.StatusCode)
		}
		if code, _ := getBody(t, srv.URL+"/zones/"+name+"/snapshot"); code != http.StatusOK {
			t.Fatalf("post-churn read of %s = %d", name, code)
		}
	}
}
