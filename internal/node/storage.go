package node

import (
	"context"
	"fmt"
	"sort"
	"time"

	"radloc/internal/rng"
)

// Degraded read-only mode.
//
// When a zone's WAL append fails (disk full, I/O error), radlocd does
// not crash and does not silently drop data: the failed append already
// vetoed the reading (durability before visibility), the fusion
// engine surfaced it as a JournalError, and the HTTP boundary answered
// 507 + Retry-After so the agent keeps its spooled copy. What this
// file adds is the state around that contract: each zone tracks
// whether its storage is currently degraded, /readyz and /statez
// surface it (with an X-Radloc-Storage: degraded header the failure
// detector reads), and a jittered background probe keeps re-testing
// the WAL so the zone exits degraded mode on its own once space frees
// — even when every agent has backed off and no organic write arrives
// to discover the recovery.

// noteAppend observes one journal append outcome — the degraded-mode
// entry and exit edge detector. Called outside every other durable
// lock.
func (d *durable) noteAppend(err error) {
	d.mu.Lock()
	if err != nil {
		d.lastStorageErr = err.Error()
		if !d.degraded {
			d.degraded = true
			d.degradedSince = time.Now()
			d.degradedTotal++
			d.mu.Unlock()
			fmt.Fprintf(d.logw, "radlocd: storage degraded (%s): %v — ingest read-only (507), probing for recovery\n", d.dir, err)
			return
		}
		d.mu.Unlock()
		return
	}
	if d.degraded {
		d.degraded = false
		since := d.degradedSince
		d.mu.Unlock()
		fmt.Fprintf(d.logw, "radlocd: storage recovered (%s) after %s — ingest writable again\n", d.dir, time.Since(since).Round(time.Millisecond))
		return
	}
	d.mu.Unlock()
}

// storageDegraded reports whether the zone is currently read-only.
func (d *durable) storageDegraded() bool {
	if d == nil {
		return false
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.degraded
}

// probeStorage re-tests the WAL (tail repair + scratch write + sync)
// and feeds the outcome through the same edge detector as organic
// appends. Returns true when the zone is healthy afterwards.
func (d *durable) probeStorage() bool {
	d.j.mu.Lock()
	err := d.j.log.Probe()
	d.j.mu.Unlock()
	d.noteAppend(err)
	return err == nil
}

// degradedZones lists the zones currently in degraded read-only mode,
// sorted — the /readyz and /statez surface.
func (zs *zoneSet) degradedZones() []string {
	var out []string
	for _, name := range zs.manager.Names() {
		z, ok := zs.manager.Lookup(name)
		if !ok {
			continue
		}
		if zoneDurable(z).storageDegraded() {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// storageProbeLoop re-probes every degraded zone's WAL on a jittered
// cadence until ctx is done. Jitter (±20%) keeps a fleet of nodes that
// all hit the same full volume from retrying in lockstep.
func (zs *zoneSet) storageProbeLoop(ctx context.Context, interval time.Duration, seed uint64) {
	if interval <= 0 {
		interval = time.Second
	}
	strm := rng.NewNamed(seed, "radlocd/storage-probe")
	for {
		d := time.Duration(float64(interval) * (0.8 + 0.4*strm.Float64()))
		t := time.NewTimer(d)
		select {
		case <-ctx.Done():
			t.Stop()
			return
		case <-t.C:
		}
		for _, name := range zs.manager.Names() {
			z, ok := zs.manager.Lookup(name)
			if !ok {
				continue
			}
			if dur := zoneDurable(z); dur.storageDegraded() {
				dur.probeStorage()
			}
		}
	}
}
