package node

// Regression tests for the on-disk cluster stores: a corrupt or
// truncated epoch file must never stop the daemon from booting — it
// is quarantined to .bad and the zone starts at epoch 0 — and the
// learned-routes cache behaves the same way.

import (
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"radloc/internal/cluster"
	"radloc/internal/fusion"
	"radloc/internal/obs"
	"radloc/internal/scenario"
	"radloc/internal/sim"
	"radloc/internal/wal"
)

// newStoreZoneSet builds a minimal durable zone set rooted at dir.
func newStoreZoneSet(t *testing.T, dir string, logw io.Writer) *zoneSet {
	t.Helper()
	sc := scenario.A(50, false)
	build := func(j fusion.Journal, met *obs.Registry) (*fusion.Engine, error) {
		fcfg := fusion.Config{Localizer: sim.LocalizerConfig(sc), Sensors: sc.Sensors, Journal: j, Metrics: met}
		fcfg.Localizer.Seed = 3
		return fusion.NewEngine(fcfg)
	}
	zs, err := newZoneSet(zoneSetOptions{
		WalRoot: dir, Fsync: wal.FsyncNever, CkptEvery: 50,
		MaxZones: 8, Mailbox: 64, Metrics: obs.NewRegistry(), Log: logw, Build: build,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = zs.close() })
	return zs
}

func TestFileEpochStoreCorruptFileQuarantined(t *testing.T) {
	dir := t.TempDir()
	var logbuf strings.Builder
	zs := newStoreZoneSet(t, dir, &logbuf)
	s := &fileEpochStore{zs: zs}

	path := filepath.Join(zs.zoneWalDir("default"), epochFileName)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(`{"epoch": 7, "sta`), 0o644); err != nil {
		t.Fatal(err) // a truncated write, as a crash mid-rename could leave
	}

	meta, err := s.Load("default")
	if err != nil {
		t.Fatalf("corrupt epoch file failed the load: %v", err)
	}
	if meta.Epoch != 0 || len(meta.Starts) != 0 {
		t.Fatalf("corrupt epoch file yielded meta %+v, want zero", meta)
	}
	if !strings.Contains(logbuf.String(), "corrupt "+epochFileName) {
		t.Fatalf("no warning logged, got: %q", logbuf.String())
	}
	// The evidence survives as .bad and the live name is free again.
	if _, err := os.Stat(path + ".bad"); err != nil {
		t.Fatalf("bad epoch file not quarantined: %v", err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("corrupt epoch file still in place under its live name")
	}
	// A second load (file now missing) is a clean epoch 0, no error.
	if meta, err := s.Load("default"); err != nil || meta.Epoch != 0 {
		t.Fatalf("load after quarantine: meta %+v, err %v", meta, err)
	}
}

func TestFileEpochStoreLegacyAndRoundTrip(t *testing.T) {
	dir := t.TempDir()
	zs := newStoreZoneSet(t, dir, io.Discard)
	s := &fileEpochStore{zs: zs}

	// Legacy format: a bare {"epoch":N} from before start history.
	path := filepath.Join(zs.zoneWalDir("default"), epochFileName)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(`{"epoch":3}`), 0o644); err != nil {
		t.Fatal(err)
	}
	meta, err := s.Load("default")
	if err != nil || meta.Epoch != 3 || len(meta.Starts) != 0 {
		t.Fatalf("legacy epoch file: meta %+v, err %v", meta, err)
	}

	// Full round-trip with start history.
	want := cluster.EpochMeta{Epoch: 5, Starts: []cluster.EpochStart{{Epoch: 4, Start: 10}, {Epoch: 5, Start: 42}}}
	if err := s.Save("default", want); err != nil {
		t.Fatal(err)
	}
	got, err := s.Load("default")
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, _ := json.Marshal(want)
	gotJSON, _ := json.Marshal(got)
	if string(wantJSON) != string(gotJSON) {
		t.Fatalf("epoch meta round-trip: got %s, want %s", gotJSON, wantJSON)
	}
}

func TestFileRouteStoreRoundTripAndCorruption(t *testing.T) {
	dir := t.TempDir()
	var logbuf strings.Builder
	s := &fileRouteStore{dir: dir, logw: &logbuf}

	// Missing file: empty table, no error.
	if r, err := s.Load(); err != nil || len(r.Zones) != 0 {
		t.Fatalf("missing routes file: %+v, err %v", r, err)
	}

	want := cluster.Routes{Zones: map[string]cluster.Route{
		"west": {Primary: "http://a", Standby: "http://b", Epoch: 4},
	}}
	if err := s.Save(want); err != nil {
		t.Fatal(err)
	}
	got, err := s.Load()
	if err != nil {
		t.Fatal(err)
	}
	if rt := got.Zones["west"]; rt != want.Zones["west"] {
		t.Fatalf("routes round-trip: got %+v, want %+v", rt, want.Zones["west"])
	}

	// Corruption: quarantined to .bad, empty table returned.
	path := filepath.Join(dir, routesFileName)
	if err := os.WriteFile(path, []byte(`{"zones": nope`), 0o644); err != nil {
		t.Fatal(err)
	}
	if r, err := s.Load(); err != nil || len(r.Zones) != 0 {
		t.Fatalf("corrupt routes file: %+v, err %v", r, err)
	}
	if _, err := os.Stat(path + ".bad"); err != nil {
		t.Fatalf("bad routes file not quarantined: %v", err)
	}
	if !strings.Contains(logbuf.String(), "corrupt "+routesFileName) {
		t.Fatalf("no warning logged, got: %q", logbuf.String())
	}
}
