package node

// Chaos integration test: a spooled transport client delivers a fixed
// measurement stream through a deterministic fault injector — seeded
// request drops, dropped responses (duplicate generator), latency,
// and a hard 10-second partition with a scheduled heal — with an
// agent crash-restart in the middle. The fusion engine must end in a
// state bit-identical to an uninterrupted run: nothing lost, nothing
// double-applied. Everything runs on one shared fake clock, so the
// "10 seconds" of partition cost microseconds of wall time and the
// whole fault pattern replays identically on every run.

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"radloc/internal/clock"
	"radloc/internal/fusion"
	"radloc/internal/httpingest"
	"radloc/internal/netchaos"
	"radloc/internal/rng"
	"radloc/internal/scenario"
	"radloc/internal/sim"
	"radloc/internal/transport"
)

// localRT serves HTTP requests in-process against a handler — the
// transport stack runs end to end with no sockets, so the only
// nondeterminism is what netchaos injects.
type localRT struct{ h http.Handler }

func (l localRT) RoundTrip(req *http.Request) (*http.Response, error) {
	rec := httptest.NewRecorder()
	l.h.ServeHTTP(rec, req)
	return rec.Result(), nil
}

const (
	chaosRounds = 6
	chaosBatch  = 7 // does not divide a 36-sensor round: batches straddle rounds
)

// chaosReadings renders the identical workload for every run.
func chaosReadings(sensors int) []transport.Reading {
	stream := rng.NewNamed(5, "chaos/cpm")
	out := make([]transport.Reading, 0, sensors*chaosRounds)
	for round := 1; round <= chaosRounds; round++ {
		for id := 0; id < sensors; id++ {
			out = append(out, transport.Reading{
				SensorID: id, CPM: 12 + stream.IntN(12), Step: round - 1, Seq: uint64(round),
			})
		}
	}
	return out
}

type chaosResult struct {
	snapshot []byte // delivery-normalized snapshot JSON
	health   []byte
	ingested uint64
	ingress  fusion.IngressStats
	client   transport.Stats
	faults   netchaos.Stats
}

// runChaosDelivery pushes the workload through spool → client →
// (optional fault injector) → ingest handler → engine, and returns
// the engine's final state. With restart=true the agent "crashes"
// after delivering one batch it never acknowledged, forcing
// redelivery from the reopened spool.
func runChaosDelivery(t *testing.T, withFaults, restart bool) chaosResult {
	t.Helper()
	sc := scenario.A(50, false)
	fcfg := fusion.Config{Localizer: sim.LocalizerConfig(sc), Sensors: sc.Sensors}
	fcfg.Localizer.Seed = 3
	engine, err := fusion.NewEngine(fcfg)
	if err != nil {
		t.Fatal(err)
	}
	clk := clock.NewFake(time.Unix(1_700_000_000, 0))
	ing := httpingest.New(engine, httpingest.Options{QueueDepth: 256, Clock: clk})

	var rt http.RoundTripper = localRT{ing}
	var faults *netchaos.RoundTripper
	if withFaults {
		faults = netchaos.New(rt, netchaos.Config{
			Seed:         99,
			Clock:        clk,
			DropProb:     0.35,
			RespDropProb: 0.15,
			Latency:      40 * time.Millisecond,
			Jitter:       20 * time.Millisecond,
			Partitions:   []netchaos.Window{{From: time.Second, To: 11 * time.Second}},
		})
		rt = faults
	}
	newClient := func(name string) *transport.Client {
		c, err := transport.NewClient(transport.Options{
			URL:       "http://fusion",
			HTTP:      rt,
			Clock:     clk,
			RNG:       rng.NewNamed(7, name),
			BatchSize: chaosBatch,
			Backoff:   transport.Backoff{Base: 100 * time.Millisecond, Cap: 2 * time.Second},
			Breaker:   transport.BreakerConfig{FailureThreshold: 3, Cooldown: time.Second},
		})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}

	ctx := context.Background()
	spoolDir := t.TempDir()
	sp, err := transport.OpenSpool(spoolDir, transport.SpoolOptions{})
	if err != nil {
		t.Fatal(err)
	}
	readings := chaosReadings(len(sc.Sensors))
	half := len(readings) / 2
	client := newClient("chaos/agent-1")

	for _, m := range readings[:half] {
		if _, err := sp.Append(m); err != nil {
			t.Fatal(err)
		}
	}
	if restart {
		// Deliver one batch but crash before acknowledging it: the
		// server has applied it, the spool still holds it, and the
		// reborn agent will redeliver it — dedup must absorb that.
		batch, _, err := sp.Next(client.BatchSize())
		if err != nil {
			t.Fatal(err)
		}
		if err := client.Send(ctx, batch); err != nil {
			t.Fatal(err)
		}
		if err := sp.Close(); err != nil {
			t.Fatal(err)
		}
		if sp, err = transport.OpenSpool(spoolDir, transport.SpoolOptions{}); err != nil {
			t.Fatal(err)
		}
		client = newClient("chaos/agent-2")
	}
	if _, err := client.Drain(ctx, sp); err != nil {
		t.Fatal(err)
	}
	for _, m := range readings[half:] {
		if _, err := sp.Append(m); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := client.Drain(ctx, sp); err != nil {
		t.Fatal(err)
	}
	if sp.Pending() != 0 {
		t.Fatalf("spool not drained: %d pending", sp.Pending())
	}
	if err := sp.Close(); err != nil {
		t.Fatal(err)
	}

	if _, err := engine.FlushPending(); err != nil {
		t.Fatal(err)
	}
	engine.Refresh()
	s := engine.Snapshot()
	res := chaosResult{ingested: s.Ingested, ingress: ing.Stats(), client: client.Stats()}
	if faults != nil {
		res.faults = faults.Stats()
	}
	// The delivery counters are the one part of the state that SHOULD
	// differ (they count absorbed duplicates); normalize before the
	// bit-identical comparison.
	s.Delivery = fusion.DeliveryStats{}
	if res.snapshot, err = json.Marshal(snapshotToJSON(s)); err != nil {
		t.Fatal(err)
	}
	if res.health, err = json.Marshal(healthToJSON(s.Health)); err != nil {
		t.Fatal(err)
	}
	return res
}

func TestChaosDeliveryBitIdentical(t *testing.T) {
	clean := runChaosDelivery(t, false, false)
	chaos := runChaosDelivery(t, true, true)
	total := uint64(len(scenario.A(50, false).Sensors) * chaosRounds)

	if clean.ingested != total {
		t.Fatalf("clean run ingested %d, want %d", clean.ingested, total)
	}
	if chaos.ingested != total {
		t.Fatalf("chaos run ingested %d, want %d — readings lost or double-applied", chaos.ingested, total)
	}
	if !bytes.Equal(clean.snapshot, chaos.snapshot) {
		t.Errorf("post-heal snapshot differs from uninterrupted run:\nclean: %s\nchaos: %s", clean.snapshot, chaos.snapshot)
	}
	if !bytes.Equal(clean.health, chaos.health) {
		t.Errorf("sensor health differs from uninterrupted run:\nclean: %s\nchaos: %s", clean.health, chaos.health)
	}

	// The injector must actually have bitten: requests dropped, a
	// partition endured, responses lost after the server applied them.
	f := chaos.faults
	if f.Dropped == 0 || f.Partitioned == 0 || f.RespDropped == 0 {
		t.Errorf("fault injector too quiet: %+v", f)
	}
	// Lost responses and the crash-restart manufactured redelivery,
	// and the sequence gate absorbed every duplicate.
	if chaos.ingress.Duplicates == 0 {
		t.Error("expected dedup-suppressed redeliveries, got none")
	}
	// Accounting reconciles: the server accepted each reading exactly
	// once, and the reborn client eventually had every batch acked.
	if chaos.ingress.Accepted != total {
		t.Errorf("server accepted %d, want %d", chaos.ingress.Accepted, total)
	}
	if chaos.client.Delivered != total {
		t.Errorf("client delivered %d, want %d", chaos.client.Delivered, total)
	}
	if chaos.client.Retries == 0 || chaos.client.NetErrors == 0 {
		t.Errorf("chaos client saw no adversity: %+v", chaos.client)
	}
}

// TestChaosDeliveryDeterministic replays the same seeded chaos run
// and requires the identical fault pattern and delivery trace — the
// property that makes the harness CI-safe.
func TestChaosDeliveryDeterministic(t *testing.T) {
	a := runChaosDelivery(t, true, true)
	b := runChaosDelivery(t, true, true)
	if a.faults != b.faults {
		t.Errorf("fault stats diverged:\n%+v\n%+v", a.faults, b.faults)
	}
	if !reflect.DeepEqual(a.client, b.client) {
		t.Errorf("client stats diverged:\n%+v\n%+v", a.client, b.client)
	}
	if !bytes.Equal(a.snapshot, b.snapshot) {
		t.Errorf("snapshots diverged")
	}
}
