package node

import (
	"context"
	"encoding/json"
	"fmt"
	"path/filepath"
	"time"

	"radloc/internal/fusion"
	"radloc/internal/scrub"
	"radloc/internal/wal"
)

// corruptDirName is where the scrubber parks artifacts that failed
// cold re-verification, inside the zone's WAL directory. Like
// diverged/, nothing in it is ever deleted — it is the operator's
// evidence of what the disk silently lost.
const corruptDirName = "corrupt"

// scrubStore adapts one zone's durability plumbing to scrub.Store.
// Every method serializes against the zone's journal lock, the same
// discipline the checkpointer uses.
type scrubStore struct {
	zs   *zoneSet
	zone string
	d    *durable
}

// Segments implements scrub.Store.
func (s *scrubStore) Segments() []wal.SegmentInfo {
	s.d.j.mu.Lock()
	defer s.d.j.mu.Unlock()
	return s.d.j.log.SegmentInfos()
}

// VerifySegment implements scrub.Store. It holds the journal lock for
// the whole re-read: a prune or quarantine racing the read would
// otherwise yield spurious missing-file errors. Segments are bounded
// (-wal-segment records), so the stall is the same order as a
// checkpoint's.
func (s *scrubStore) VerifySegment(start uint64) error {
	s.d.j.mu.Lock()
	defer s.d.j.mu.Unlock()
	return s.d.j.log.VerifySegment(start)
}

// QuarantineSegment implements scrub.Store, parking the segment in
// <wal-dir>/corrupt/.
func (s *scrubStore) QuarantineSegment(start uint64) (uint64, error) {
	dst := filepath.Join(s.d.dir, corruptDirName)
	s.d.j.mu.Lock()
	removed, err := s.d.j.log.QuarantineSegment(start, dst)
	s.d.j.mu.Unlock()
	return removed, err
}

// VerifyCheckpoints implements scrub.Store.
func (s *scrubStore) VerifyCheckpoints() ([]uint64, error) {
	return wal.VerifyCheckpoints(s.d.fs, s.d.dir)
}

// QuarantineCheckpoint implements scrub.Store.
func (s *scrubStore) QuarantineCheckpoint(applied uint64) error {
	if err := wal.QuarantineCheckpoint(s.d.fs, s.d.dir, applied); err != nil {
		return err
	}
	s.d.forgetCheckpoint(applied)
	return nil
}

// Repair implements scrub.Store: re-anchor recovery past the
// quarantined range with a checkpoint whose applied offset is >= to —
// seeded from a caught-up replica's exported state when the cluster
// has one (an independent copy, immune to whatever corrupted the
// local disk), and otherwise from the local in-memory engine, which
// is still correct: the corruption was cold, every lost record was
// applied when it was first written and the engine never forgot it.
func (s *scrubStore) Repair(ctx context.Context, from, to uint64) (string, error) {
	if src, ok := s.zs.repairFromReplica(ctx, s.zone, s.d, to); ok {
		return src, nil
	}
	return "local", s.d.adoptLocalCheckpoint()
}

// repairFromReplica tries the replica path of a scrub repair: a
// caught-up standby (acked at least through the hole's end) exports
// its state, and that snapshot becomes the new recovery anchor.
// ok=false means the caller should fall back to local state; the
// reason is logged, never fatal.
func (zs *zoneSet) repairFromReplica(ctx context.Context, zoneName string, d *durable, to uint64) (string, bool) {
	n := zs.clusterNode
	if n == nil {
		return "", false
	}
	peer, acked, ok := n.RepairSource(zoneName)
	if !ok || acked < to {
		return "", false
	}
	ctx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	applied, _, state, err := n.FetchState(ctx, peer, zoneName)
	if err != nil {
		fmt.Fprintf(zs.logw, "radlocd: zone %q: scrub repair fetch from %s failed, using local state: %v\n",
			zoneName, peer, err)
		return "", false
	}
	if applied < to {
		return "", false
	}
	// The snapshot must at least decode before it becomes the recovery
	// anchor; boot tolerates an unusable checkpoint only by falling
	// back to a full replay, which the quarantine just made impossible.
	var st fusion.EngineState
	if err := json.Unmarshal(state, &st); err != nil {
		fmt.Fprintf(zs.logw, "radlocd: zone %q: replica %s state does not decode, using local state: %v\n",
			zoneName, peer, err)
		return "", false
	}
	if err := d.adoptCheckpoint(wal.Checkpoint{Applied: applied, State: state}); err != nil {
		fmt.Fprintf(zs.logw, "radlocd: zone %q: persisting replica checkpoint failed, using local state: %v\n",
			zoneName, err)
		return "", false
	}
	return peer, true
}

// adoptLocalCheckpoint re-anchors recovery from the local in-memory
// engine — the scrubber's fallback when no caught-up replica exists.
func (d *durable) adoptLocalCheckpoint() error {
	st, err := d.engine.ExportState()
	if err != nil {
		return err
	}
	blob, err := json.Marshal(st)
	if err != nil {
		return err
	}
	return d.adoptCheckpoint(wal.Checkpoint{Applied: st.Journaled, State: blob})
}

// adoptCheckpoint persists an externally assembled checkpoint and
// folds it into the cadence bookkeeping. The WAL is synced first so
// the checkpoint never refers past the durable log; the WAL itself is
// not pruned here — the next cadence checkpoint advances the floor on
// its own schedule.
func (d *durable) adoptCheckpoint(ck wal.Checkpoint) error {
	d.j.mu.Lock()
	err := d.j.log.Sync()
	d.j.mu.Unlock()
	if err != nil {
		return err
	}
	if err := wal.WriteCheckpointFS(d.fs, d.dir, ck); err != nil {
		return err
	}
	_ = wal.PruneCheckpointsFS(d.fs, d.dir, 2)
	d.mu.Lock()
	if ck.Applied > d.lastApplied {
		d.prevApplied = d.lastApplied
		d.lastApplied = ck.Applied
	}
	d.mu.Unlock()
	return nil
}

// forgetCheckpoint clears bookkeeping that referred to a quarantined
// checkpoint, so the next cadence checkpoint fires promptly and the
// prune floor cannot rest on a file that no longer exists.
func (d *durable) forgetCheckpoint(applied uint64) {
	d.mu.Lock()
	if d.lastApplied == applied {
		d.lastApplied = d.prevApplied
	}
	if d.prevApplied == applied {
		d.prevApplied = 0
	}
	d.mu.Unlock()
}

// scrubTargets enumerates the currently-live durable zones for the
// scrubber. Degraded zones are skipped — a disk that cannot accept
// writes cannot accept a repair either; the storage probe loop owns
// that state — and so are zones idled out of memory: their next
// recovery validates them anyway.
func (zs *zoneSet) scrubTargets() []scrub.Target {
	var out []scrub.Target
	for _, name := range zs.manager.Names() {
		z, ok := zs.manager.Lookup(name)
		if !ok {
			continue
		}
		d := zoneDurable(z)
		if d == nil || d.storageDegraded() {
			continue
		}
		out = append(out, scrub.Target{Zone: name, Store: &scrubStore{zs: zs, zone: name, d: d}})
	}
	return out
}
