package node

// Shared test harness: sequenced measurement streams and snapshot-line
// helpers used across the pipe, durability and chaos tests.

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"radloc/internal/rng"
	"radloc/internal/scenario"
)

// seqMeasurementsNDJSON renders `steps` rounds of sequence-stamped
// readings (the full wire form: step + seq).
func seqMeasurementsNDJSON(t *testing.T, sc scenario.Scenario, steps int) []string {
	t.Helper()
	stream := rng.NewNamed(9, "radlocd-test/measure")
	var lines []string
	for step := 0; step < steps; step++ {
		for _, sen := range sc.Sensors {
			m := sen.Measure(stream, sc.Sources, nil, step)
			lines = append(lines, fmt.Sprintf(`{"sensorId":%d,"cpm":%d,"step":%d,"seq":%d}`, sen.ID, m.CPM, step, step+1))
		}
	}
	return lines
}

// lastSnapshotLine parses the final line of pipe-mode output as a
// snapshot.
func lastSnapshotLine(t *testing.T, output string) snapshotJSON {
	t.Helper()
	lines := strings.Split(strings.TrimSpace(output), "\n")
	var snap snapshotJSON
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &snap); err != nil {
		t.Fatalf("last output line is not a snapshot: %v\n%s", err, output)
	}
	return snap
}

// filterState strips the delivery bookkeeping from a snapshot, leaving
// the fields that must be invariant under crash/redelivery/reordering.
func filterState(s snapshotJSON) snapshotJSON {
	s.Delivery = nil
	s.Journaled = 0
	s.Malformed = 0
	s.Shed = 0
	return s
}
