package node

// Read fan-out: a zone primary under write load forwards eligible read
// queries (/snapshot, /statez and their zoned forms) to a caught-up
// standby, spending the replica's idle CPU instead of contending with
// the ingest path. The policy is conservative by construction:
//
//   - only the zone's live primary forwards (a standby always serves
//     its own reads — no ping-pong, enforced twice by a loop-guard
//     header);
//   - only when the routing table names a standby that is not us;
//   - only when that standby's replication lag, as the primary sees it
//     from the pull-driven ack watermark, is within MaxLag records —
//     a partitioned or slow standby is excluded, never consulted;
//   - any forwarding failure falls back to serving locally, so fan-out
//     can only add capacity, never subtract availability.
//
// Every decision lands on radloc_read_fanout_total{result}:
// forwarded, local (not primary / not under load), no_standby,
// lagging, error.

import (
	"io"
	"net/http"
	"sync/atomic"
	"time"

	"radloc/internal/obs"
	"radloc/internal/zone"
)

// fanoutHeader marks a forwarded read so the receiving standby serves
// it locally instead of re-evaluating its own fan-out policy — the
// loop guard for pathological routing tables where both nodes believe
// they own a zone.
const fanoutHeader = "X-Radloc-Fanout"

// readFanout holds the fan-out policy state for one node.
type readFanout struct {
	self        string // this node's base URL; never forward to it
	zs          *zoneSet
	client      *http.Client
	maxLag      uint64
	minInflight int64        // forward only while at least this many writes are in flight
	inflight    atomic.Int64 // writes currently inside the ingest handler
	results     *obs.CounterFamily
}

// fanoutResults pre-registers every result label so the family
// exposes complete zero-valued series from boot.
var fanoutResults = []string{"forwarded", "local", "no_standby", "lagging", "error"}

func newReadFanout(self string, zs *zoneSet, rt http.RoundTripper, maxLag uint64, minInflight int, reg *obs.Registry) *readFanout {
	if rt == nil {
		rt = http.DefaultTransport
	}
	f := &readFanout{
		self:        self,
		zs:          zs,
		client:      &http.Client{Transport: rt, Timeout: 10 * time.Second},
		maxLag:      maxLag,
		minInflight: int64(minInflight),
		results: reg.CounterFamily("radloc_read_fanout_total",
			"Read queries considered for standby fan-out, by outcome.", "result"),
	}
	for _, r := range fanoutResults {
		f.results.With(r)
	}
	return f
}

// trackWrites wraps the write route so the fan-out policy can see
// write pressure: reads are only worth forwarding while writes are
// actually contending for this node. Nil-receiver safe.
func (f *readFanout) trackWrites(next http.Handler) http.Handler {
	if f == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		f.inflight.Add(1)
		defer f.inflight.Add(-1)
		next.ServeHTTP(w, r)
	})
}

// read wraps one read endpoint with the fan-out policy: forward to the
// picked standby when the policy admits it, serve locally otherwise.
// zoneOf maps the request to the zone whose routing decides. Nil-
// receiver safe: without fan-out the local handler serves directly.
func (f *readFanout) read(zoneOf func(*http.Request) string, local http.Handler) http.Handler {
	if f == nil {
		return local
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet || r.Header.Get(fanoutHeader) != "" {
			local.ServeHTTP(w, r) // non-reads keep their 405s; forwarded reads stop here
			return
		}
		target, verdict := f.pick(zoneOf(r))
		if target == "" {
			f.results.With(verdict).Inc()
			local.ServeHTTP(w, r)
			return
		}
		if f.forward(w, r, target) {
			f.results.With("forwarded").Inc()
			return
		}
		f.results.With("error").Inc()
		local.ServeHTTP(w, r)
	})
}

// pick applies the policy for one zone: the standby's base URL when
// forwarding is admitted, otherwise "" plus the metric verdict.
func (f *readFanout) pick(zoneName string) (target, verdict string) {
	if f.inflight.Load() < f.minInflight {
		return "", "local" // not under write load; local reads are cheap
	}
	n := f.zs.clusterNode
	if n == nil || n.AdmitWrite(zoneName) != nil {
		// Not this node's zone to offload: a standby (or a draining
		// primary mid-cutover) always answers its own reads.
		return "", "local"
	}
	rt, ok := n.Routes().Zones[zoneName]
	if !ok || rt.Standby == "" || rt.Standby == f.self {
		return "", "no_standby"
	}
	for _, st := range n.Status() {
		if st.Zone != zoneName {
			continue
		}
		// Head is our WAL head, Acked the standby's durable watermark
		// from its last pull — the primary-side lag view, which goes
		// stale (and therefore grows) the moment the standby stops
		// pulling. That staleness is the point: a partitioned standby
		// excludes itself without any extra probing.
		if st.Head > st.Acked && st.Head-st.Acked > f.maxLag {
			return "", "lagging"
		}
		return rt.Standby, ""
	}
	return "", "no_standby"
}

// forward proxies one GET to the standby, buffering the response so a
// mid-flight failure can still fall back to the local handler without
// having committed a status line. False means "serve locally instead";
// nothing has been written to w.
func (f *readFanout) forward(w http.ResponseWriter, r *http.Request, target string) bool {
	req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, target+r.URL.RequestURI(), nil)
	if err != nil {
		return false
	}
	req.Header.Set(fanoutHeader, f.self)
	resp, err := f.client.Do(req)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return false
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 32<<20))
	if err != nil {
		return false
	}
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	_, _ = w.Write(body)
	return true
}

// requestZone maps a read request to the zone whose routing governs
// it: the {zone} path value on zoned routes, the default zone on the
// legacy unnamed ones.
func requestZone(r *http.Request) string {
	if name := r.PathValue("zone"); name != "" {
		return name
	}
	return zone.DefaultZone
}
