package node

// Regression tests for the HTTP ingest backpressure posture: body
// bounds (413), Content-Type enforcement (415), admission-queue
// shedding and per-sensor rate limiting (429 + Retry-After), the
// /statez ingress counters, and the server's slow-client timeouts.

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"radloc/internal/clock"
	"radloc/internal/fusion"
	"radloc/internal/httpingest"
	"radloc/internal/scenario"
	"radloc/internal/sim"
)

func newBackpressureEngine(t *testing.T) *fusion.Engine {
	t.Helper()
	sc := scenario.A(50, false)
	fcfg := fusion.Config{Localizer: sim.LocalizerConfig(sc), Sensors: sc.Sensors}
	fcfg.Localizer.Seed = 3
	engine, err := fusion.NewEngine(fcfg)
	if err != nil {
		t.Fatal(err)
	}
	return engine
}

func TestHTTPRejectsNonJSONContentType(t *testing.T) {
	engine := newBackpressureEngine(t)
	ing := httpingest.New(engine, httpingest.Options{})
	srv := httptest.NewServer(newMux(serveConfig{Engine: engine, Ingest: ing}))
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/measurements", "text/plain", strings.NewReader(`{"sensorId":0,"cpm":12}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnsupportedMediaType {
		t.Fatalf("text/plain status = %d, want 415", resp.StatusCode)
	}
	// Parameters on the JSON media type must still be accepted.
	resp, err = http.Post(srv.URL+"/measurements", "application/json; charset=utf-8",
		strings.NewReader(`{"sensorId":0,"cpm":12}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("application/json;charset status = %d, want 200", resp.StatusCode)
	}
	if got := ing.Stats().BadContentType; got != 1 {
		t.Errorf("BadContentType = %d, want 1", got)
	}
}

func TestHTTPBoundsRequestBodies(t *testing.T) {
	engine := newBackpressureEngine(t)
	ing := httpingest.New(engine, httpingest.Options{MaxBody: 64})
	srv := httptest.NewServer(newMux(serveConfig{Engine: engine, Ingest: ing}))
	defer srv.Close()

	big := `[` + strings.Repeat(`{"sensorId":0,"cpm":12},`, 20) + `{"sensorId":0,"cpm":12}]`
	resp, err := http.Post(srv.URL+"/measurements", "application/json", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized status = %d, want 413", resp.StatusCode)
	}
	// A body within the bound still works.
	resp, err = http.Post(srv.URL+"/measurements", "application/json", strings.NewReader(`{"sensorId":0,"cpm":12}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("small body status = %d, want 200", resp.StatusCode)
	}
	if got := ing.Stats().Oversized; got != 1 {
		t.Errorf("Oversized = %d, want 1", got)
	}

	// The counters surface on /statez for reconciliation.
	resp, err = http.Get(srv.URL + "/statez")
	if err != nil {
		t.Fatal(err)
	}
	var st statezJSON
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Ingress.Oversized != 1 || st.Ingress.Accepted != 1 {
		t.Errorf("/statez ingress = %+v, want oversized 1 accepted 1", st.Ingress)
	}
}

func TestHTTPShedsWhenQueueFull(t *testing.T) {
	engine := newBackpressureEngine(t)
	entered := make(chan struct{})
	release := make(chan struct{})
	// AfterBatch runs while the admission slot is still held, so it can
	// park the first request inside the handler deterministically.
	ing := httpingest.New(engine, httpingest.Options{
		QueueDepth: 1,
		RetryAfter: 2 * time.Second,
		AfterBatch: func() { entered <- struct{}{}; <-release },
	})
	srv := httptest.NewServer(newMux(serveConfig{Engine: engine, Ingest: ing}))
	defer srv.Close()

	firstDone := make(chan error, 1)
	go func() {
		resp, err := http.Post(srv.URL+"/measurements", "application/json",
			strings.NewReader(`{"sensorId":0,"cpm":12}`))
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				err = fmt.Errorf("first request status = %d, want 200", resp.StatusCode)
			}
		}
		firstDone <- err
	}()
	<-entered // the single slot is now occupied

	resp, err := http.Post(srv.URL+"/measurements", "application/json",
		strings.NewReader(`{"sensorId":1,"cpm":12}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("queue-full status = %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "2" {
		t.Errorf("Retry-After = %q, want %q", got, "2")
	}

	close(release)
	if err := <-firstDone; err != nil {
		t.Fatal(err)
	}
	if got := ing.Stats().Shed429; got != 1 {
		t.Errorf("Shed429 = %d, want 1", got)
	}
}

// TestHTTPRateLimitsPerSensor drives the per-sensor token bucket on a
// fake clock and shows that whole-batch retry converges: duplicates
// from the already-applied prefix are dedup-suppressed and their
// tokens refunded, so the retry budget is spent only on fresh data.
func TestHTTPRateLimitsPerSensor(t *testing.T) {
	engine := newBackpressureEngine(t)
	clk := clock.NewFake(time.Unix(1000, 0))
	ing := httpingest.New(engine, httpingest.Options{
		RatePerSec: 1,
		Burst:      2,
		Clock:      clk,
		RetryAfter: time.Second,
	})

	var batch strings.Builder
	batch.WriteString("[")
	for seq := 1; seq <= 5; seq++ {
		if seq > 1 {
			batch.WriteString(",")
		}
		fmt.Fprintf(&batch, `{"sensorId":0,"cpm":20,"seq":%d}`, seq)
	}
	batch.WriteString("]")

	post := func() *httptest.ResponseRecorder {
		req := httptest.NewRequest(http.MethodPost, "/measurements", strings.NewReader(batch.String()))
		req.Header.Set("Content-Type", "application/json")
		rec := httptest.NewRecorder()
		ing.ServeHTTP(rec, req)
		return rec
	}

	// Burst 2: the first two readings are admitted, the third refuses
	// the rest of the batch.
	rec := post()
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("first batch status = %d, want 429", rec.Code)
	}
	if got := rec.Header().Get("Retry-After"); got != "1" {
		t.Errorf("Retry-After = %q, want %q", got, "1")
	}
	if s := ing.Stats(); s.Accepted != 2 || s.RateLimited != 3 {
		t.Fatalf("after first batch: accepted %d rateLimited %d, want 2 and 3", s.Accepted, s.RateLimited)
	}

	// Retry the whole batch until it clears, refilling between tries.
	var last *httptest.ResponseRecorder
	for try := 0; try < 5; try++ {
		clk.Advance(2 * time.Second)
		last = post()
		if last.Code == http.StatusOK {
			break
		}
	}
	if last.Code != http.StatusOK {
		t.Fatalf("batch never cleared, last status = %d", last.Code)
	}
	var ack struct {
		Accepted  int `json:"accepted"`
		Duplicate int `json:"duplicate"`
	}
	if err := json.NewDecoder(last.Body).Decode(&ack); err != nil {
		t.Fatal(err)
	}
	if ack.Accepted+ack.Duplicate == 0 {
		t.Errorf("final ack %+v, want progress", ack)
	}
	if s := ing.Stats(); s.Accepted != 5 {
		t.Errorf("total accepted = %d, want 5 (each reading applied exactly once)", s.Accepted)
	}
}

func TestHTTPServerTimeoutPosture(t *testing.T) {
	srv := newHTTPServer(http.NewServeMux(), httpTimeouts{
		Read: time.Second, Write: 2 * time.Second, Idle: 3 * time.Second,
	})
	if srv.ReadTimeout != time.Second || srv.WriteTimeout != 2*time.Second || srv.IdleTimeout != 3*time.Second {
		t.Errorf("timeouts = %v/%v/%v, want 1s/2s/3s", srv.ReadTimeout, srv.WriteTimeout, srv.IdleTimeout)
	}
	def := newHTTPServer(http.NewServeMux(), httpTimeouts{})
	if def.ReadTimeout <= 0 || def.WriteTimeout <= 0 || def.IdleTimeout <= 0 || def.ReadHeaderTimeout <= 0 {
		t.Errorf("default timeouts must all be set, got %v/%v/%v/%v",
			def.ReadTimeout, def.WriteTimeout, def.IdleTimeout, def.ReadHeaderTimeout)
	}
}

// TestHTTPCutsSlowClients sends request headers and then stalls the
// body — the slow-loris shape. The server's ReadTimeout must cut the
// connection instead of pinning it for the client's lifetime.
func TestHTTPCutsSlowClients(t *testing.T) {
	engine := newBackpressureEngine(t)
	srv := newHTTPServer(newMux(serveConfig{Engine: engine}), httpTimeouts{Read: 200 * time.Millisecond})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Close()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	req := "POST /measurements HTTP/1.1\r\nHost: radlocd\r\nContent-Type: application/json\r\nContent-Length: 100\r\n\r\n"
	if _, err := conn.Write([]byte(req)); err != nil {
		t.Fatal(err)
	}
	// Never send the promised body. A well-guarded server closes the
	// connection once ReadTimeout expires; without the guard this read
	// would block until the 5s deadline and fail the test.
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	start := time.Now()
	_, err = io.ReadAll(conn)
	elapsed := time.Since(start)
	if ne, ok := err.(net.Error); ok && ne.Timeout() {
		t.Fatalf("server never cut the stalled connection (waited %v)", elapsed)
	}
	if elapsed > 3*time.Second {
		t.Errorf("connection cut after %v, want well under the client deadline", elapsed)
	}
}
