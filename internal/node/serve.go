package node

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"radloc/internal/cluster"
	"radloc/internal/fusion"
	"radloc/internal/httpingest"
	"radloc/internal/obs"
	"radloc/internal/zone"
)

// measurementJSON is the wire form of one reading, shared with the
// HTTP ingest boundary. The full record form carries the emission
// step and a per-sensor monotone sequence number (what the replay
// recorder emits); the minimal two-field form remains valid — seq 0
// means "unsequenced" and bypasses the dedup/reorder gate, preserving
// the old trust-the-transport behavior for legacy feeders.
type measurementJSON = httpingest.Measurement

// snapshotJSON is the wire form of the engine state.
type snapshotJSON struct {
	Ingested    uint64                `json:"ingested"`
	Rejected    uint64                `json:"rejected"`
	Refreshes   uint64                `json:"refreshes"`
	Quarantined int                   `json:"quarantined"`
	Malformed   uint64                `json:"malformed,omitempty"`   // pipe mode: unparseable lines skipped
	Shed        uint64                `json:"shed,omitempty"`        // pipe mode: readings shed by the bounded queue
	ZoneRefused uint64                `json:"zoneRefused,omitempty"` // pipe mode: readings refused at the zone boundary (bad name, zone limit)
	Journaled   uint64                `json:"journaled,omitempty"`   // WAL offset (durability on)
	Delivery    *fusion.DeliveryStats `json:"delivery,omitempty"`    // dedup/reorder gate counters
	Estimates   []estimateJSON        `json:"estimates"`
	Tracks      []trackJSON           `json:"tracks,omitempty"`
}

type estimateJSON struct {
	X           float64 `json:"x"`
	Y           float64 `json:"y"`
	StrengthUCi float64 `json:"strengthUCi"`
	Mass        float64 `json:"mass"`
}

type trackJSON struct {
	ID          int     `json:"id"`
	X           float64 `json:"x"`
	Y           float64 `json:"y"`
	StrengthUCi float64 `json:"strengthUCi"`
	Hits        int     `json:"hits"`
}

// sensorHealthJSON is the wire form of one sensor's health record.
type sensorHealthJSON struct {
	SensorID    int      `json:"sensorId"`
	Status      string   `json:"status"`
	LastZ       *float64 `json:"lastZ,omitempty"` // omitted until the monitor has scored a reading
	Seen        uint64   `json:"seen"`
	Dropped     uint64   `json:"dropped"`
	Quarantines int      `json:"quarantines"`
}

func healthToJSON(hs []fusion.SensorHealth) []sensorHealthJSON {
	out := make([]sensorHealthJSON, 0, len(hs))
	for _, h := range hs {
		rec := sensorHealthJSON{
			SensorID:    h.SensorID,
			Status:      h.Status.String(),
			Seen:        h.Seen,
			Dropped:     h.Dropped,
			Quarantines: h.Quarantines,
		}
		if !math.IsNaN(h.LastZ) {
			z := h.LastZ
			rec.LastZ = &z
		}
		out = append(out, rec)
	}
	return out
}

func snapshotToJSON(s fusion.Snapshot) snapshotJSON {
	out := snapshotJSON{
		Ingested:    s.Ingested,
		Rejected:    s.Rejected,
		Refreshes:   s.Refreshes,
		Quarantined: s.Quarantined,
		Journaled:   s.Journaled,
		Estimates:   make([]estimateJSON, 0, len(s.Estimates)),
	}
	if s.Delivery != (fusion.DeliveryStats{}) {
		del := s.Delivery
		out.Delivery = &del
	}
	for _, e := range s.Estimates {
		out.Estimates = append(out.Estimates, estimateJSON{
			X: e.Pos.X, Y: e.Pos.Y, StrengthUCi: e.Strength, Mass: e.Mass,
		})
	}
	for _, t := range s.Tracks {
		out.Tracks = append(out.Tracks, trackJSON{
			ID: t.ID, X: t.Pos.X, Y: t.Pos.Y, StrengthUCi: t.Strength, Hits: t.Hits,
		})
	}
	return out
}

// queuedMeas is one pipe-mode queue entry: the reading plus the zone
// it routes to.
type queuedMeas struct {
	zone string
	m    fusion.Meas
}

// shedQueue is the pipe mode's bounded ingest queue. When full, a
// push sheds the oldest queued reading from the same (zone, sensor)
// pair (losing one stale reading from a chatty sensor beats losing
// fresh data from a quiet one), falling back to the globally oldest,
// and counts the drop.
type shedQueue struct {
	mu      sync.Mutex
	cond    *sync.Cond
	buf     []queuedMeas
	cap     int
	closed  bool // no more pushes (EOF); drain what remains
	aborted bool // shutdown; pop stops immediately
	dropped uint64
}

func newShedQueue(capacity int) *shedQueue {
	if capacity < 1 {
		capacity = 1
	}
	q := &shedQueue{cap: capacity}
	q.cond = sync.NewCond(&q.mu)
	return q
}

func (q *shedQueue) push(qm queuedMeas) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed || q.aborted {
		return
	}
	if len(q.buf) >= q.cap {
		victim := 0
		for i := range q.buf {
			if q.buf[i].m.SensorID == qm.m.SensorID && q.buf[i].zone == qm.zone {
				victim = i
				break
			}
		}
		q.buf = append(q.buf[:victim], q.buf[victim+1:]...)
		q.dropped++
	}
	q.buf = append(q.buf, qm)
	q.cond.Signal()
}

// pop blocks for the next reading; false means drained-and-closed or
// aborted.
func (q *shedQueue) pop() (queuedMeas, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.buf) == 0 && !q.closed && !q.aborted {
		q.cond.Wait()
	}
	if q.aborted || len(q.buf) == 0 {
		return queuedMeas{}, false
	}
	qm := q.buf[0]
	q.buf = q.buf[1:]
	return qm, true
}

func (q *shedQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.cond.Broadcast()
}

func (q *shedQueue) abort() {
	q.mu.Lock()
	q.aborted = true
	q.mu.Unlock()
	q.cond.Broadcast()
}

func (q *shedQueue) wasAborted() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.aborted
}

func (q *shedQueue) drops() uint64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.dropped
}

// servePipe consumes NDJSON measurements from r through a bounded
// shed queue, emitting a snapshot line (of the default zone — the
// legacy wire format) every reportEvery measurements and a final one
// at EOF or when ctx is cancelled (SIGINT/SIGTERM). A record's "zone"
// field routes it to that zone; unstamped records land in the default
// zone. Each reading goes through its zone's event loop as a
// synchronous batch of one, so application order is queue order and
// every zone's checkpoint cadence fires per reading, exactly as the
// pre-sharding loop did. Malformed lines are counted and skipped —
// field data is messy and one corrupt record must not kill the
// stream — as are unknown sensors, duplicates, out-of-range readings
// and readings for unroutable zones.
func servePipe(ctx context.Context, zs *zoneSet, r io.Reader, w io.Writer, reportEvery, queueCap int) error {
	engine := zs.defaultZone().Engine()
	q := newShedQueue(queueCap)
	var malformed atomic.Uint64
	scanErr := make(chan error, 1)
	go func() {
		defer q.close()
		scanner := bufio.NewScanner(r)
		scanner.Buffer(make([]byte, 0, 64*1024), 1<<20)
		for scanner.Scan() {
			if ctx.Err() != nil {
				scanErr <- nil
				return
			}
			line := scanner.Bytes()
			if len(line) == 0 {
				continue
			}
			var m measurementJSON
			if err := json.Unmarshal(line, &m); err != nil {
				malformed.Add(1)
				continue
			}
			zoneName := m.Zone
			if zoneName == "" {
				zoneName = zone.DefaultZone
			}
			q.push(queuedMeas{zone: zoneName, m: m.Meas()})
		}
		scanErr <- scanner.Err()
	}()
	go func() {
		<-ctx.Done()
		q.abort()
	}()

	enc := json.NewEncoder(w)
	count := 0
	var zoneRefused uint64
	flush := func() error {
		s := snapshotToJSON(engine.Snapshot())
		s.Malformed = malformed.Load()
		s.Shed = q.drops()
		s.ZoneRefused = zoneRefused
		return enc.Encode(s)
	}
	for {
		qm, ok := q.pop()
		if !ok {
			break
		}
		if _, err := zs.pipe.Submit(ctx, qm.zone, []fusion.Meas{qm.m}); err != nil && ctx.Err() == nil {
			// Bad zone name, zone limit or a write fence: the reading has
			// nowhere to go here; count it and keep the stream moving.
			zoneRefused++
			continue
		}
		count++
		if count%reportEvery == 0 {
			if err := flush(); err != nil {
				return err
			}
		}
	}
	if !q.wasAborted() {
		if err := <-scanErr; err != nil {
			return err
		}
	}
	// Graceful end of stream: release the default zone's reorder-gate
	// tail (the watermark will never advance again), journal it, and
	// emit the final source picture. The caller's zoneSet.close does
	// the same flush for named zones and writes every final checkpoint.
	_, _ = engine.FlushPending()
	engine.Refresh()
	return flush()
}

// newIngest builds the admission-controlled /measurements handler
// over a single engine — the one-zone test configuration — wiring the
// daemon's checkpoint cadence into it. d may be nil.
func newIngest(engine *fusion.Engine, d *durable, opts httpingest.Options) *httpingest.Handler {
	opts.AfterBatch = func() { d.maybeCheckpoint(os.Stderr) }
	return httpingest.New(engine, opts)
}

// newZonedIngest builds the measurements handler over the write
// pipeline — the sharded deployment's single write path, fence
// included. No AfterBatch here: each zone's checkpoint cadence is
// wired into its own event loop by the factory.
func newZonedIngest(p *WritePipeline, opts httpingest.Options) *httpingest.Handler {
	return httpingest.NewZoned(p.Resolver(), opts)
}

// serveConfig assembles the HTTP mode's moving parts. Durable may be
// nil (durability off), Ingest may be nil (a default admission policy
// is built), Metrics may be nil (GET /metrics serves an empty
// registry — process-only families).
type serveConfig struct {
	Engine   *fusion.Engine
	Durable  *durable
	Ingest   *httpingest.Handler
	Timeouts httpTimeouts
	// Zones, when non-nil, mounts the zone-scoped API (/zones and
	// /zones/{zone}/...). Engine and Durable must then be the default
	// zone's — the unnamed routes alias it.
	Zones *zoneSet
	// Metrics is served on GET /metrics in Prometheus text format.
	Metrics *obs.Registry
	// Pprof mounts net/http/pprof under /debug/pprof/ when true. Off
	// by default: the profile endpoints expose heap contents and must
	// be opted into on trusted networks only.
	Pprof bool
	// Cluster, when non-nil, mounts the /cluster endpoints and fences
	// the write routes: a standby zone 307s writes to its primary (or
	// 503s when the primary is unknown), a draining zone 503s with
	// Retry-After. Requires Zones (the fence renders the write
	// pipeline's admission stage).
	Cluster *cluster.Node
	// Fanout, when non-nil, applies the read fan-out policy to
	// /snapshot and /statez (and their zoned forms) and meters write
	// pressure on the measurement routes.
	Fanout *readFanout
	// Ready, when non-nil, gates /readyz: false keeps it at 503 even
	// after the first refresh — boot-time zone recovery or replication
	// catch-up is still in progress.
	Ready func() bool
}

// fenceWrites renders the write pipeline's fence stage at the HTTP
// boundary, ahead of body admission so routing wins over backpressure:
// only the zone's live primary applies writes. A standby with a known
// primary answers 307 — the agent's transport follows it and re-aims —
// and a draining or ownerless zone answers 503 so the agent's
// retry/spool machinery holds the data instead of losing it.
func fenceWrites(p *WritePipeline, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		name := r.PathValue("zone")
		if name == "" {
			name = zone.DefaultZone
		}
		if err := p.Fence(name); err != nil {
			var np *cluster.NotPrimaryError
			switch {
			case errors.As(err, &np) && np.Primary != "":
				http.Redirect(w, r, np.Primary+r.URL.RequestURI(), http.StatusTemporaryRedirect)
			case errors.Is(err, cluster.ErrDraining):
				w.Header().Set("Retry-After", "1")
				http.Error(w, err.Error(), http.StatusServiceUnavailable)
			default:
				http.Error(w, err.Error(), http.StatusServiceUnavailable)
			}
			return
		}
		next.ServeHTTP(w, r)
	})
}

// zoneGET wraps a per-zone read endpoint: GET only, the zone must
// already be live (reads never conjure zones into being — a name
// without a zone is a 404), and the render result is written as JSON.
func zoneGET(man *zone.Manager, render func(*zone.Zone) any) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "GET only", http.StatusMethodNotAllowed)
			return
		}
		name := r.PathValue("zone")
		if err := zone.ValidateName(name); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		z, ok := man.Lookup(name)
		if !ok {
			http.Error(w, fmt.Sprintf("no such zone %q", name), http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(render(z))
	}
}

// statsToJSON is the /stats payload for one engine.
func statsToJSON(engine *fusion.Engine, started time.Time) map[string]any {
	s := engine.Snapshot()
	return map[string]any{
		"uptimeSeconds": time.Since(started).Seconds(),
		"sensors":       engine.Sensors(),
		"ingested":      s.Ingested,
		"rejected":      s.Rejected,
		"refreshes":     s.Refreshes,
		"quarantined":   s.Quarantined,
		"estimates":     len(s.Estimates),
		"tracks":        len(s.Tracks),
	}
}

// newMux builds the HTTP API.
func newMux(cfg serveConfig) *http.ServeMux {
	engine, d, ing := cfg.Engine, cfg.Durable, cfg.Ingest
	if ing == nil {
		ing = newIngest(engine, d, httpingest.Options{Metrics: cfg.Metrics})
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	mux := http.NewServeMux()
	// Prometheus text-format exposition of the process registry: the
	// same collectors /statez and /stats derive their JSON from.
	mux.Handle("/metrics", reg.Handler())
	if cfg.Pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	// Durability and delivery posture: WAL offset, checkpoint history,
	// boot-time recovery report, dedup/reorder counters, admission
	// (backpressure) counters.
	mux.Handle("/statez", cfg.Fanout.read(requestZone, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "GET only", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(statez(engine, d, ing))
	})))
	// Liveness: the process is up and serving.
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, "ok: %d sensors registered\n", engine.Sensors())
	})
	// Readiness: the engine has recomputed estimates at least once, so
	// /snapshot serves a meaningful source picture. Distinct from
	// liveness so orchestrators don't route traffic to a fusion center
	// that has not yet seen a full sensor round.
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		if cfg.Ready != nil && !cfg.Ready() {
			http.Error(w, "not ready: zone recovery or replication catch-up in progress",
				http.StatusServiceUnavailable)
			return
		}
		// Degraded storage keeps the node out of rotation for writes:
		// reads still work (snapshots, metrics), but an orchestrator or
		// the failure detector reading /readyz should treat this node as
		// impaired. The header names the cause so the failover prober
		// can count it as a miss without parsing the body.
		if cfg.Zones != nil {
			if degraded := cfg.Zones.degradedZones(); len(degraded) > 0 {
				w.Header().Set("X-Radloc-Storage", "degraded")
				http.Error(w, fmt.Sprintf("not ready: storage degraded in zones %v (ingest read-only, answering 507)", degraded),
					http.StatusServiceUnavailable)
				return
			}
		}
		// A standby serves reads before its first refresh — its state
		// comes from replication, not local ingest — so the refresh
		// check applies only where this node owns the default zone.
		standby := false
		if cfg.Cluster != nil {
			var np *cluster.NotPrimaryError
			standby = errors.As(cfg.Cluster.AdmitWrite(zone.DefaultZone), &np)
		}
		s := engine.Snapshot()
		if s.Refreshes == 0 && !standby {
			http.Error(w, fmt.Sprintf("not ready: %d measurements ingested, no estimate refresh yet", s.Ingested),
				http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintf(w, "ready: %d refreshes over %d measurements\n", s.Refreshes, s.Ingested)
	})
	mux.HandleFunc("/sensors", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "GET only", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(healthToJSON(engine.Snapshot().Health))
	})
	started := time.Now()
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "GET only", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(statsToJSON(engine, started))
	})
	mux.Handle("/snapshot", cfg.Fanout.read(requestZone, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "GET only", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(snapshotToJSON(engine.Snapshot()))
	})))
	// Sequenced readings pass the dedup/reorder gate (a buffered
	// reading counts as accepted: it will be applied when its round
	// releases); seq-0 readings take the legacy direct path. The
	// handler sheds with 429 + Retry-After under overload — see
	// internal/httpingest. In cluster mode, writes are additionally
	// fenced to the zone's live primary.
	var writeRoute http.Handler = ing
	if cfg.Cluster != nil {
		writeRoute = fenceWrites(cfg.Zones.pipe, ing)
		cfg.Cluster.Mount(mux)
	}
	writeRoute = cfg.Fanout.trackWrites(writeRoute)
	mux.Handle("/measurements", writeRoute)
	if cfg.Zones != nil {
		man := cfg.Zones.manager
		// Zone registry: the live zone names, sorted.
		mux.HandleFunc("/zones", func(w http.ResponseWriter, r *http.Request) {
			if r.Method != http.MethodGet {
				http.Error(w, "GET only", http.StatusMethodNotAllowed)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			_ = json.NewEncoder(w).Encode(map[string]any{"zones": man.Names()})
		})
		// The zone-scoped write route shares the admission handler with
		// the legacy route; the {zone} path value picks the engine (and
		// creates the zone on its first batch).
		mux.Handle("/zones/{zone}/measurements", writeRoute)
		// Zone-scoped reads mirror the unnamed routes one-to-one; the
		// unnamed routes themselves alias the default zone.
		mux.Handle("/zones/{zone}/snapshot", cfg.Fanout.read(requestZone, zoneGET(man, func(z *zone.Zone) any {
			return snapshotToJSON(z.Engine().Snapshot())
		})))
		mux.HandleFunc("/zones/{zone}/sensors", zoneGET(man, func(z *zone.Zone) any {
			return healthToJSON(z.Engine().Snapshot().Health)
		}))
		mux.HandleFunc("/zones/{zone}/stats", zoneGET(man, func(z *zone.Zone) any {
			return statsToJSON(z.Engine(), started)
		}))
		mux.Handle("/zones/{zone}/statez", cfg.Fanout.read(requestZone, zoneGET(man, func(z *zone.Zone) any {
			// Ingress (admission) counters are handler-global, shared by
			// every zone, so the per-zone view reports durability and
			// delivery only.
			return statez(z.Engine(), zoneDurable(z), nil)
		})))
	}
	return mux
}

// httpTimeouts are the server's slow-client guards: a client that
// trickles its request (slow loris), stalls reading the response, or
// parks an idle keep-alive connection is cut instead of pinning a
// connection forever.
type httpTimeouts struct {
	Read  time.Duration
	Write time.Duration
	Idle  time.Duration
}

func (t httpTimeouts) withDefaults() httpTimeouts {
	if t.Read <= 0 {
		t.Read = 15 * time.Second
	}
	if t.Write <= 0 {
		t.Write = 30 * time.Second
	}
	if t.Idle <= 0 {
		t.Idle = 2 * time.Minute
	}
	return t
}

// newHTTPServer assembles the daemon's http.Server with its timeout
// posture — factored out so tests can assert it directly.
func newHTTPServer(h http.Handler, t httpTimeouts) *http.Server {
	t = t.withDefaults()
	return &http.Server{
		Handler:           h,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       t.Read,
		WriteTimeout:      t.Write,
		IdleTimeout:       t.Idle,
	}
}

// serveHTTP serves the node's prebuilt handler on addr until ctx is
// cancelled (SIGINT/SIGTERM), then shuts down gracefully — in-flight
// requests drain — and flushes a final snapshot line to logw.
func serveHTTP(ctx context.Context, addr string, h http.Handler, engine *fusion.Engine, t httpTimeouts, pprof bool, logw io.Writer) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	extra := ""
	if pprof {
		extra = " /debug/pprof/"
	}
	fmt.Fprintf(logw, "radlocd: serving on http://%s (POST /measurements /zones/{z}/measurements, GET /snapshot /sensors /statez /zones /metrics /healthz /readyz%s)\n", ln.Addr(), extra)
	srv := newHTTPServer(h, t)
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		_ = srv.Close()
	}
	// Release and journal the reorder gate's tail before the final
	// picture; the caller writes the final checkpoint.
	_, _ = engine.FlushPending()
	engine.Refresh()
	fmt.Fprintln(logw, "radlocd: shutting down, final snapshot:")
	return json.NewEncoder(logw).Encode(snapshotToJSON(engine.Snapshot()))
}
