package node

// Read fan-out tests: a zone primary with fan-out enabled forwards
// /snapshot reads to its caught-up standby — and the body the standby
// serves is byte-identical to the primary's own — while a lagging
// standby is excluded from fan-out entirely.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"radloc/internal/cluster"
	"radloc/internal/node/nodetest"
	"radloc/internal/rng"
	"radloc/internal/scenario"
)

// fanoutOn enables read fan-out with the strictest lag bound (fully
// caught up) and no write-load threshold, so every eligible read
// forwards.
func fanoutOn(c *Config) {
	c.ReadFanout = true
	c.FanoutMaxLag = 0
	c.FanoutMinInflight = 0
}

// fanoutGet issues one GET against a mux, optionally marked as an
// already-forwarded read (the loop-guard header), and returns status
// and body.
func fanoutGet(t *testing.T, mux http.Handler, url string, forwarded bool) (int, string) {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, url, nil)
	if forwarded {
		req.Header.Set(fanoutHeader, "http://test")
	}
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, req)
	return rec.Code, rec.Body.String()
}

// fanoutCounter scrapes one result series of radloc_read_fanout_total
// off a node's /metrics.
func fanoutCounter(t *testing.T, mux http.Handler, result string) int {
	t.Helper()
	rec, code := nodetest.HTTPStatus(mux, http.MethodGet, "http://x/metrics", "")
	if code != http.StatusOK {
		t.Fatalf("/metrics = HTTP %d", code)
	}
	prefix := fmt.Sprintf("radloc_read_fanout_total{result=%q} ", result)
	for _, line := range strings.Split(rec.Body.String(), "\n") {
		if strings.HasPrefix(line, prefix) {
			v, err := strconv.Atoi(strings.TrimPrefix(line, prefix))
			if err != nil {
				t.Fatalf("unparseable series %q", line)
			}
			return v
		}
	}
	t.Fatalf("series %s not exposed", prefix)
	return 0
}

// postRounds posts `steps` rounds of seq-0 readings straight to a
// node's mux. Seq-0 traffic keeps the delivery counters zero on both
// primary and standby — the standby replays the records through the
// very same apply path — which is what makes their snapshots
// byte-comparable.
func postRounds(t *testing.T, mux http.Handler, host string, sc scenario.Scenario, from, to int) {
	t.Helper()
	stream := rng.NewNamed(uint64(11+from), "fanout/measure")
	for step := from; step < to; step++ {
		var batch []measurementJSON
		for _, sen := range sc.Sensors {
			m := sen.Measure(stream, sc.Sources, nil, step)
			batch = append(batch, measurementJSON{SensorID: sen.ID, CPM: m.CPM, Step: step})
		}
		body, _ := json.Marshal(batch)
		rec, code := nodetest.HTTPStatus(mux, http.MethodPost, host+"/measurements", string(body))
		if code != http.StatusOK {
			t.Fatalf("round %d refused: HTTP %d: %s", step, code, rec.Body.String())
		}
	}
}

// TestReadFanoutByteIdenticalAndLagBounded is the fan-out acceptance
// pair: a caught-up standby serves the primary's /snapshot reads with
// a byte-identical body, and the moment the standby stops pulling
// (partition) the primary's own lag view excludes it — reads fall
// back to local, never to a stale replica.
func TestReadFanoutByteIdenticalAndLagBounded(t *testing.T) {
	fab := nodetest.NewFabric()
	routes := cluster.Routes{Zones: map[string]cluster.Route{
		"default": {Primary: "http://a", Standby: "http://b"},
	}}
	a := newClusterTestNode(t, fab, "a", &routes, fanoutOn)
	b := newClusterTestNode(t, fab, "b", &routes, fanoutOn)

	sc := scenario.A(50, false)
	postRounds(t, a.mux, "http://a", sc, 0, 4)
	aBack := a.backend(t, "default")
	nodetest.WaitUntil(t, "standby catch-up", func() bool {
		st, ok := b.status("default")
		return ok && st.CaughtUp && b.backend(t, "default").Offset() == aBack.Offset()
	})
	// The pull that reported durability (the ack) may still be in
	// flight; the primary forwards only once its own lag view agrees.
	nodetest.WaitUntil(t, "primary to observe the ack", func() bool {
		st, ok := a.status("default")
		return ok && st.Acked == st.Head
	})

	// Byte-identity: the primary's local body and the standby's local
	// body must match exactly — same estimates, same refresh count,
	// same health, same journal offset.
	codeA, bodyA := fanoutGet(t, a.mux, "http://a/snapshot", true) // loop-guard: forced local
	codeB, bodyB := fanoutGet(t, b.mux, "http://b/snapshot", false)
	if codeA != http.StatusOK || codeB != http.StatusOK {
		t.Fatalf("snapshot status: primary %d standby %d", codeA, codeB)
	}
	if bodyA != bodyB {
		t.Fatalf("caught-up standby snapshot diverged from primary:\nprimary: %s\nstandby: %s", bodyA, bodyB)
	}

	// An unmarked read on the primary forwards to the standby and
	// returns that same body.
	before := fanoutCounter(t, a.mux, "forwarded")
	code, body := fanoutGet(t, a.mux, "http://a/snapshot", false)
	if code != http.StatusOK || body != bodyA {
		t.Fatalf("forwarded read: HTTP %d, body diverged (%v)", code, body != bodyA)
	}
	if got := fanoutCounter(t, a.mux, "forwarded"); got != before+1 {
		t.Fatalf("forwarded counter = %d, want %d", got, before+1)
	}
	// The standby served it locally (loop guard): no ping-pong.
	if v := fanoutCounter(t, b.mux, "forwarded"); v != 0 {
		t.Fatalf("standby forwarded %d reads; must always serve its own", v)
	}

	// /statez fans out through the same policy.
	code, _ = fanoutGet(t, a.mux, "http://a/statez", false)
	if code != http.StatusOK {
		t.Fatalf("/statez via fan-out: HTTP %d", code)
	}

	// Partition the standby's pull path and keep writing: the
	// primary's head advances past the last acked offset, the lag
	// bound trips, and reads stop forwarding — served locally, still
	// 200, with the lagging verdict counted.
	b.link.Cut("a", true)
	postRounds(t, a.mux, "http://a", sc, 4, 6)
	forwardedBefore := fanoutCounter(t, a.mux, "forwarded")
	laggingBefore := fanoutCounter(t, a.mux, "lagging")
	code, body = fanoutGet(t, a.mux, "http://a/snapshot", false)
	if code != http.StatusOK || body == "" {
		t.Fatalf("read during standby lag: HTTP %d", code)
	}
	if got := fanoutCounter(t, a.mux, "lagging"); got != laggingBefore+1 {
		t.Fatalf("lagging counter = %d, want %d", got, laggingBefore+1)
	}
	if got := fanoutCounter(t, a.mux, "forwarded"); got != forwardedBefore {
		t.Fatalf("lagging standby still served a read (forwarded %d → %d)", forwardedBefore, got)
	}
	// The local fallback body is the primary's own fresh state.
	_, wantLocal := fanoutGet(t, a.mux, "http://a/snapshot", true)
	if body != wantLocal {
		t.Fatalf("lag fallback body is not the primary's local snapshot")
	}

	// A standby never initiates fan-out, marked or not.
	if _, sb := fanoutGet(t, b.mux, "http://b/snapshot", false); sb == "" {
		t.Fatal("standby stopped serving local reads")
	}
}

// TestReadFanoutForwardFailureFallsBackLocal: a forwarding failure
// (standby vanishes between route lookup and proxy) must degrade to a
// locally served 200, counted as an error — fan-out can only ever add
// capacity.
func TestReadFanoutForwardFailureFallsBackLocal(t *testing.T) {
	fab := nodetest.NewFabric()
	routes := cluster.Routes{Zones: map[string]cluster.Route{
		"default": {Primary: "http://a", Standby: "http://b"},
	}}
	a := newClusterTestNode(t, fab, "a", &routes, fanoutOn)
	b := newClusterTestNode(t, fab, "b", &routes, fanoutOn)

	sc := scenario.A(50, false)
	postRounds(t, a.mux, "http://a", sc, 0, 2)
	aBack := a.backend(t, "default")
	nodetest.WaitUntil(t, "standby catch-up", func() bool {
		return b.backend(t, "default").Offset() == aBack.Offset()
	})
	nodetest.WaitUntil(t, "primary to observe the ack", func() bool {
		st, ok := a.status("default")
		return ok && st.Acked == st.Head
	})

	// Sever the primary's client path to the standby. The routing
	// table and lag view still say "forward", so the proxy attempt
	// itself fails — and must fall back to local.
	a.link.Cut("b", true)
	code, body := fanoutGet(t, a.mux, "http://a/snapshot", false)
	if code != http.StatusOK || body == "" {
		t.Fatalf("forward-failure fallback: HTTP %d", code)
	}
	if got := fanoutCounter(t, a.mux, "error"); got == 0 {
		t.Fatal("forward failure not counted")
	}
	_, wantLocal := fanoutGet(t, a.mux, "http://a/snapshot", true)
	if body != wantLocal {
		t.Fatal("fallback body is not the local snapshot")
	}
}
