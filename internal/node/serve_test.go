package node

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"radloc/internal/fusion"
	"radloc/internal/rng"
	"radloc/internal/scenario"
	"radloc/internal/sim"
	"radloc/internal/track"
)

func newTestServer(t *testing.T) (*httptest.Server, scenario.Scenario) {
	t.Helper()
	sc := scenario.A(50, false)
	fcfg := fusion.Config{Localizer: sim.LocalizerConfig(sc), Sensors: sc.Sensors}
	fcfg.Localizer.Seed = 3
	fcfg.Tracking = &track.Config{}
	engine, err := fusion.NewEngine(fcfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(newMux(serveConfig{Engine: engine}))
	t.Cleanup(srv.Close)
	return srv, sc
}

func TestHTTPHealthz(t *testing.T) {
	srv, _ := newTestServer(t)
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz status %d", resp.StatusCode)
	}
}

func TestHTTPMeasurementsAndSnapshot(t *testing.T) {
	srv, sc := newTestServer(t)
	stream := rng.NewNamed(4, "radlocd-http/measure")

	for step := 0; step < 6; step++ {
		var batch []measurementJSON
		for _, sen := range sc.Sensors {
			m := sen.Measure(stream, sc.Sources, nil, step)
			batch = append(batch, measurementJSON{SensorID: sen.ID, CPM: m.CPM})
		}
		body, _ := json.Marshal(batch)
		resp, err := http.Post(srv.URL+"/measurements", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var ack map[string]int
		if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if ack["accepted"] != len(batch) {
			t.Fatalf("accepted = %d, want %d", ack["accepted"], len(batch))
		}
	}

	resp, err := http.Get(srv.URL + "/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap snapshotJSON
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if len(snap.Estimates) == 0 {
		t.Fatal("no estimates over HTTP")
	}
	found := 0
	for _, src := range sc.Sources {
		for _, e := range snap.Estimates {
			dx, dy := e.X-src.Pos.X, e.Y-src.Pos.Y
			if dx*dx+dy*dy < 100 {
				found++
				break
			}
		}
	}
	if found != 2 {
		t.Errorf("HTTP pipeline found %d/2 sources", found)
	}
}

func TestHTTPSingleMeasurementAndErrors(t *testing.T) {
	srv, _ := newTestServer(t)

	// A single object (not an array) is accepted.
	resp, err := http.Post(srv.URL+"/measurements", "application/json",
		strings.NewReader(`{"sensorId":0,"cpm":7}`))
	if err != nil {
		t.Fatal(err)
	}
	var ack map[string]int
	_ = json.NewDecoder(resp.Body).Decode(&ack)
	resp.Body.Close()
	if ack["accepted"] != 1 {
		t.Errorf("single measurement ack: %v", ack)
	}

	// Garbage body → 400.
	resp, err = http.Post(srv.URL+"/measurements", "application/json", strings.NewReader("zzz"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("garbage body status %d", resp.StatusCode)
	}

	// Wrong methods.
	resp, err = http.Get(srv.URL + "/measurements")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /measurements status %d", resp.StatusCode)
	}
	resp, err = http.Post(srv.URL+"/snapshot", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /snapshot status %d", resp.StatusCode)
	}
}

func TestHTTPStats(t *testing.T) {
	srv, _ := newTestServer(t)
	resp, err := http.Post(srv.URL+"/measurements", "application/json",
		strings.NewReader(`{"sensorId":0,"cpm":7}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	resp, err = http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats["ingested"].(float64) != 1 {
		t.Errorf("ingested = %v", stats["ingested"])
	}
	if stats["sensors"].(float64) != 36 {
		t.Errorf("sensors = %v", stats["sensors"])
	}
	if stats["uptimeSeconds"].(float64) < 0 {
		t.Error("negative uptime")
	}
	// Wrong method.
	resp2, err := http.Post(srv.URL+"/stats", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /stats status %d", resp2.StatusCode)
	}
}

func TestHTTPReadyzAndSensors(t *testing.T) {
	srv, sc := newTestServer(t)

	// Before any estimate refresh the daemon is live but not ready.
	resp, err := http.Get(srv.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("readyz before refresh: status %d, want 503", resp.StatusCode)
	}

	// Post one full sensor round; the engine refreshes and turns ready.
	stream := rng.NewNamed(5, "radlocd-http/ready")
	var batch []measurementJSON
	for _, sen := range sc.Sensors {
		m := sen.Measure(stream, sc.Sources, nil, 0)
		batch = append(batch, measurementJSON{SensorID: sen.ID, CPM: m.CPM})
	}
	body, _ := json.Marshal(batch)
	resp, err = http.Post(srv.URL+"/measurements", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	resp, err = http.Get(srv.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("readyz after refresh: status %d, want 200", resp.StatusCode)
	}

	// /sensors reports one health record per sensor, sorted by ID.
	resp, err = http.Get(srv.URL + "/sensors")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var health []sensorHealthJSON
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if len(health) != len(sc.Sensors) {
		t.Fatalf("sensors = %d records, want %d", len(health), len(sc.Sensors))
	}
	for i, h := range health {
		if h.SensorID != i {
			t.Fatalf("sensors not sorted by ID: %d at index %d", h.SensorID, i)
		}
		if h.Status != "healthy" {
			t.Errorf("sensor %d status %q after clean round", h.SensorID, h.Status)
		}
		if h.Seen != 1 {
			t.Errorf("sensor %d seen = %d, want 1", h.SensorID, h.Seen)
		}
	}

	// POST to /sensors is refused.
	resp, err = http.Post(srv.URL+"/sensors", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /sensors: status %d, want 405", resp.StatusCode)
	}
}
