package node

// Unattended-HA integration tests: the failover.Promoter driving real
// daemon stacks over the in-process fabric. The scenarios mirror the
// ISSUE's acceptance criteria — kill the primary and the standby
// promotes itself with no operator in the loop and ends bit-identical
// to a clean run; a flapping link never thrashes the epoch; a lagging
// standby refuses the promotion; and a resurrected primary quarantines
// its divergent WAL suffix and rejoins as a clean standby.

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"radloc/internal/clock"
	"radloc/internal/cluster"
	"radloc/internal/failover"
	"radloc/internal/node/nodetest"
	"radloc/internal/scenario"
)

// newTestPromoter wires a promoter to one test node's cluster layer
// over that node's own fabric link, on a fake clock so tests drive
// the probe schedule deterministically with Tick.
func newTestPromoter(t *testing.T, n *clusterTestNode, self string, peers []string, tune func(*failover.Options)) (*failover.Promoter, *clock.Fake) {
	t.Helper()
	fc := clock.NewFake(time.Unix(1000, 0))
	opts := failover.Options{
		Node:     n.node,
		Self:     self,
		Peers:    peers,
		HTTP:     n.link,
		Clock:    fc,
		Interval: 2 * time.Second,
		Suspect:  2,
		HoldDown: 4 * time.Second,
		Metrics:  n.reg,
	}
	if tune != nil {
		tune(&opts)
	}
	prom, err := failover.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	return prom, fc
}

// TestFailoverUnattendedPromotion is the headline criterion: the
// primary dies, nobody runs `radloc ctl promote`, and the standby's
// failure detector promotes it through the epoch-fencing path. After
// at-least-once redelivery of the whole stream the promoted node is
// bit-identical to an uninterrupted standalone run, and its routing
// table asserts the new ownership at the bumped epoch.
func TestFailoverUnattendedPromotion(t *testing.T) {
	fab := nodetest.NewFabric()
	routes := cluster.Routes{Zones: map[string]cluster.Route{
		"default": {Primary: "http://a", Standby: "http://b"},
	}}
	a := newClusterTestNode(t, fab, "a", &routes)
	b := newClusterTestNode(t, fab, "b", &routes)
	clean := newClusterTestNode(t, fab, "c", nil)

	sensors := len(scenario.A(50, false).Sensors)
	readings := chaosReadings(sensors)
	half := (len(readings) / (2 * sensors)) * sensors

	nodetest.SendRounds(t, nodetest.NewClient(t, fab, "http://c", "clean", ""), readings, sensors)
	wantSnap, wantHealth := normalizedState(t, clean.zs.defaultZone().Engine())

	nodetest.SendRounds(t, nodetest.NewClient(t, fab, "http://a", "pre-kill", ""), readings[:half], sensors)
	aBack := a.backend(t, "default")
	nodetest.WaitUntil(t, "standby catch-up before the kill", func() bool {
		st, ok := b.status("default")
		return ok && st.CaughtUp && b.backend(t, "default").Offset() == aBack.Offset()
	})

	prom, fc := newTestPromoter(t, b, "http://b", []string{"http://a"}, nil)
	prom.Tick(context.Background()) // healthy round: peer up, routes merged
	if got := prom.Peers(); len(got) != 1 || !got[0].Up {
		t.Fatalf("peer view before the kill = %+v, want up", got)
	}

	// Kill the primary: probes and replication both go dark.
	b.link.Cut("a", true)
	fc.Advance(3 * time.Second)
	prom.Tick(context.Background()) // miss 1: suspicion building, no action
	if st, _ := b.status("default"); st.Role != cluster.RoleStandby {
		t.Fatalf("promoted after a single miss (role %s)", st.Role)
	}
	fc.Advance(3 * time.Second)
	prom.Tick(context.Background()) // miss 2 + hold-down elapsed: dead

	st, ok := b.status("default")
	if !ok || st.Role != cluster.RolePrimary || st.Epoch != 2 {
		t.Fatalf("zone after unattended failover = %+v, want primary at epoch 2", st)
	}
	if _, code := nodetest.HTTPStatus(b.mux, http.MethodGet, "http://b/readyz", ""); code != http.StatusOK {
		t.Fatalf("promoted node /readyz = %d, want 200", code)
	}
	if rt := b.node.Routes().Zones["default"]; rt.Primary != "http://b" || rt.Epoch != 2 {
		t.Fatalf("routes after promotion = %+v, want self-assertion at epoch 2", rt)
	}
	if v, ok := nodetest.ScrapeGauge(t, b.mux, "radloc_failover_promotions_total"); !ok || v != 1 {
		t.Fatalf("promotions metric = %v (%v), want 1", v, ok)
	}

	// At-least-once redelivery: the promoted node must converge on the
	// clean run bit for bit.
	nodetest.SendRounds(t, nodetest.NewClient(t, fab, "http://b", "post-kill", ""), readings, sensors)
	gotSnap, gotHealth := normalizedState(t, b.zs.defaultZone().Engine())
	if !bytes.Equal(wantSnap, gotSnap) {
		t.Errorf("promoted standby diverged from clean run:\nclean:    %s\npromoted: %s", wantSnap, gotSnap)
	}
	if !bytes.Equal(wantHealth, gotHealth) {
		t.Errorf("promoted standby health diverged:\nclean:    %s\npromoted: %s", wantHealth, gotHealth)
	}
}

// TestFailoverFlappingLinkNeverPromotes pins the hold-down contract
// end to end: a link that drops every other probe satisfies the
// suspicion threshold over and over, but each successful probe
// refreshes the last-alive stamp, so the peer is never declared dead
// and the epoch never moves — no thrash, no split brain.
func TestFailoverFlappingLinkNeverPromotes(t *testing.T) {
	fab := nodetest.NewFabric()
	routes := cluster.Routes{Zones: map[string]cluster.Route{
		"default": {Primary: "http://a", Standby: "http://b"},
	}}
	a := newClusterTestNode(t, fab, "a", &routes)
	b := newClusterTestNode(t, fab, "b", &routes)

	prom, fc := newTestPromoter(t, b, "http://b", []string{"http://a"}, func(o *failover.Options) {
		o.Suspect = 1                 // suspicion is instant...
		o.HoldDown = 10 * time.Second // ...the hold-down does the work
	})
	for cycle := 0; cycle < 6; cycle++ {
		b.link.Cut("a", true)
		fc.Advance(3 * time.Second)
		prom.Tick(context.Background()) // miss: suspected immediately
		b.link.Cut("a", false)
		fc.Advance(3 * time.Second)
		prom.Tick(context.Background()) // alive: hold-down resets
	}

	if st, _ := b.status("default"); st.Role != cluster.RoleStandby || st.Epoch != 1 {
		t.Fatalf("flapping link moved the zone: %+v, want standby at epoch 1", st)
	}
	if st, _ := a.status("default"); st.Role != cluster.RolePrimary || st.Epoch != 1 {
		t.Fatalf("flapping link disturbed the primary: %+v", st)
	}
	for _, m := range []string{"radloc_failover_peer_deaths_total", "radloc_failover_promotions_total"} {
		if v, ok := nodetest.ScrapeGauge(t, b.mux, m); ok && v != 0 {
			t.Fatalf("%s = %v under flapping, want 0", m, v)
		}
	}
}

// TestFailoverLagBoundRefusal pins the safety valve: the primary dies
// while the standby is measurably behind the last head it saw, the
// lag exceeds the configured bound, and the promoter refuses — raising
// the refusal counter and leaving promotion to the operator.
func TestFailoverLagBoundRefusal(t *testing.T) {
	fab := nodetest.NewFabric()
	routes := cluster.Routes{Zones: map[string]cluster.Route{
		"default": {Primary: "http://f", Standby: "http://b"},
	}}
	// A scripted primary that advertises head 7 but ships no records:
	// the standby learns exactly how far behind it is and stays there.
	mux := http.NewServeMux()
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	mux.HandleFunc("GET /cluster/routes", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(cluster.Routes{})
	})
	mux.HandleFunc("GET /cluster/wal/{zone}", func(w http.ResponseWriter, r *http.Request) {
		hello, err := cluster.EncodeControl(cluster.FrameHello, 1, 7, 0)
		if err != nil {
			t.Error(err)
		}
		end, err := cluster.EncodeControl(cluster.FrameEnd, 1, 7, 0)
		if err != nil {
			t.Error(err)
		}
		w.Write(hello)
		w.Write(end)
	})
	fab.Add("f", mux)
	b := newClusterTestNode(t, fab, "b", &routes)

	nodetest.WaitUntil(t, "standby to observe the unreachable lag", func() bool {
		st, ok := b.status("default")
		return ok && st.LagRecords == 7 && !st.CaughtUp
	})

	prom, fc := newTestPromoter(t, b, "http://b", []string{"http://f"}, func(o *failover.Options) {
		o.Suspect = 1
		o.HoldDown = time.Second
		o.MaxPromoteLag = 3 // 7 records behind is above the bound
	})
	prom.Tick(context.Background()) // healthy round
	b.link.Cut("f", true)
	fc.Advance(2 * time.Second)
	prom.Tick(context.Background()) // dead — and promotion must be refused

	st, _ := b.status("default")
	if st.Role != cluster.RoleStandby || st.Epoch != 1 {
		t.Fatalf("lagging standby promoted itself: %+v", st)
	}
	if v, ok := nodetest.ScrapeGauge(t, b.mux, "radloc_failover_refusals_total"); !ok || v < 1 {
		t.Fatalf("refusals metric = %v (%v), want >= 1", v, ok)
	}
	// The refusal is re-evaluated, not terminal: later ticks keep
	// refusing while the lag stands, rather than promoting anyway.
	fc.Advance(3 * time.Second)
	prom.Tick(context.Background())
	if st, _ := b.status("default"); st.Role != cluster.RoleStandby {
		t.Fatalf("refusal did not hold on a later tick: %+v", st)
	}
	if v, _ := nodetest.ScrapeGauge(t, b.mux, "radloc_failover_refusals_total"); v < 2 {
		t.Fatalf("refusals metric = %v after second tick, want >= 2", v)
	}
}

// divergedRecords counts the WAL records quarantined under dir and
// decodes the marker note's accounting.
func divergedRecords(t *testing.T, dir string) (lines uint64, note struct {
	Floor   uint64 `json:"floor"`
	Records uint64 `json:"records"`
}) {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("diverged dir: %v", err)
	}
	sawNote := false
	for _, ent := range ents {
		name := ent.Name()
		switch {
		case strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, ".ndjson"):
			raw, err := os.ReadFile(filepath.Join(dir, name))
			if err != nil {
				t.Fatal(err)
			}
			for _, line := range bytes.Split(raw, []byte("\n")) {
				if len(bytes.TrimSpace(line)) > 0 {
					lines++
				}
			}
		case strings.HasPrefix(name, "DIVERGED-") && strings.HasSuffix(name, ".json"):
			raw, err := os.ReadFile(filepath.Join(dir, name))
			if err != nil {
				t.Fatal(err)
			}
			if err := json.Unmarshal(raw, &note); err != nil {
				t.Fatalf("unparseable diverged note %s: %v", name, err)
			}
			sawNote = true
		}
	}
	if !sawNote {
		t.Fatalf("no DIVERGED-*.json marker in %s (entries: %v)", dir, ents)
	}
	return lines, note
}

// TestClusterResurrectionDivergenceRepair is the data-safety half of
// the tentpole: a primary keeps accepting writes while partitioned
// from its standby, dies, and comes back after the standby has been
// promoted and has grown its own history past the fork point. The
// resurrected node must learn the new topology, step down, move its
// divergent WAL suffix (and nothing less) into diverged/ where an
// operator can still read it, and rejoin as a caught-up standby
// bit-identical to the new primary.
func TestClusterResurrectionDivergenceRepair(t *testing.T) {
	fab := nodetest.NewFabric()
	routes := cluster.Routes{Zones: map[string]cluster.Route{
		"default": {Primary: "http://a", Standby: "http://b"},
	}}
	walA := t.TempDir()
	a := newClusterTestNodeAt(t, fab, "a", &routes, walA)
	b := newClusterTestNode(t, fab, "b", &routes)

	sensors := len(scenario.A(50, false).Sensors)
	readings := chaosReadings(sensors)
	forkAt := 3 * sensors

	agent := nodetest.NewClient(t, fab, "http://a", "pre-fork", "")
	nodetest.SendRounds(t, agent, readings[:forkAt], sensors)
	aBack := a.backend(t, "default")
	nodetest.WaitUntil(t, "standby catch-up before the fork", func() bool {
		st, ok := b.status("default")
		return ok && st.CaughtUp && b.backend(t, "default").Offset() == aBack.Offset()
	})

	// Partition replication, then land more rounds on the primary only:
	// these records will never ship, and become the divergent suffix.
	b.link.Cut("a", true)
	nodetest.SendRounds(t, agent, readings[forkAt:], sensors)

	// Kill the primary and promote the standby at the fork point.
	a.node.Close()
	if err := a.zs.close(); err != nil {
		t.Fatal(err)
	}
	fab.Add("a", nil) // the host stays dark until the resurrection
	bHead := b.backend(t, "default").Offset()
	if epoch, err := b.node.Promote("default"); err != nil || epoch != 2 {
		t.Fatalf("promote = (%d, %v), want epoch 2", epoch, err)
	}
	// The new primary grows its own post-fork history.
	nodetest.SendRounds(t, nodetest.NewClient(t, fab, "http://b", "post-fork", ""), readings, sensors)

	// Resurrect the old primary over its surviving WAL directory. It
	// boots believing the stale routes — primary for the zone, epoch 1.
	a2 := newClusterTestNodeAt(t, fab, "a", &routes, walA)
	aHead := a2.backend(t, "default").Offset()
	if aHead <= bHead {
		t.Fatalf("resurrected node recovered offset %d, want > fork point %d", aHead, bHead)
	}
	if st, _ := a2.status("default"); st.Role != cluster.RolePrimary {
		t.Fatalf("resurrected node booted as %s, want (stale) primary", st.Role)
	}

	// One probe round: the peer's routing table asserts the zone at
	// epoch 2, the resurrected node steps down and its replica loop
	// runs the divergence repair against the new primary.
	prom, _ := newTestPromoter(t, a2, "http://a", []string{"http://b"}, nil)
	prom.Tick(context.Background())
	nodetest.WaitUntil(t, "resurrected node to step down", func() bool {
		st, ok := a2.status("default")
		return ok && st.Role == cluster.RoleStandby
	})
	bBack := b.backend(t, "default")
	nodetest.WaitUntil(t, "resurrected node to rejoin caught up", func() bool {
		st, ok := a2.status("default")
		return ok && st.CaughtUp && a2.backend(t, "default").Offset() == bBack.Offset()
	})

	// The divergent suffix — every record past the fork, and only
	// those — sits readable in diverged/, with the marker note agreeing.
	lines, note := divergedRecords(t, filepath.Join(walA, divergedDirName))
	if want := aHead - bHead; lines != want || note.Records != want {
		t.Fatalf("diverged/ holds %d records, note says %d; want exactly %d (offsets %d..%d)",
			lines, note.Records, want, bHead, aHead)
	}
	if note.Floor != bHead {
		t.Fatalf("diverged note floor = %d, want the fork point %d", note.Floor, bHead)
	}

	// And the rejoined standby is bit-identical to the new primary.
	wantSnap, wantHealth := normalizedState(t, b.zs.defaultZone().Engine())
	nodetest.WaitUntil(t, "final tail replication", func() bool {
		return a2.backend(t, "default").Offset() == bBack.Offset()
	})
	gotSnap, gotHealth := normalizedState(t, a2.zs.defaultZone().Engine())
	if !bytes.Equal(wantSnap, gotSnap) {
		t.Errorf("rejoined standby diverged from the new primary:\nprimary:  %s\nrejoined: %s", wantSnap, gotSnap)
	}
	if !bytes.Equal(wantHealth, gotHealth) {
		t.Errorf("rejoined standby health diverged:\nprimary:  %s\nrejoined: %s", wantHealth, gotHealth)
	}
}
