// Package node assembles the radiation-fusion daemon as an embeddable
// component: one Node owns the sharded zone runtime (per-zone fusion
// engines behind single-writer event loops), the per-zone durability
// (WAL + checkpoints), cluster replication and write fencing, the
// unattended-failover promoter, the storage integrity scrubber, and
// the HTTP API — all constructed from a plain Config, with a
// Start/Shutdown lifecycle and an http.Handler that mounts in-process.
// The radlocd binary is a thin shell over Run; tests (and future
// multi-node harnesses) instantiate Nodes directly and wire them
// together with in-memory transports.
//
// Every write, whatever its entry point — pipe-mode stdin, HTTP
// measurements, replication — flows through one WritePipeline, so the
// ordering and error invariants (fence before admission, journal
// before apply, 507 on degraded storage) hold on all paths by
// construction. Read queries can fan out: a zone primary under write
// load forwards /snapshot and /statez to a caught-up standby, lag-
// bounded via the routing table (see fanout.go).
package node

import (
	"context"
	"fmt"
	"io"
	"log"
	"net/http"
	"sync"
	"time"

	"radloc/internal/cluster"
	"radloc/internal/failover"
	"radloc/internal/fusion"
	"radloc/internal/httpingest"
	"radloc/internal/obs"
	"radloc/internal/rng"
	"radloc/internal/scenario"
	"radloc/internal/scrub"
	"radloc/internal/sim"
	"radloc/internal/track"
	"radloc/internal/vfs"
	"radloc/internal/wal"
)

// Config describes one node. Scenario is required; everything else
// has a working zero value (durability off, single node, defaults per
// subsystem). The field groups mirror the radlocd flag groups —
// cmd/radlocd is a flag-parsing shell over this struct.
type Config struct {
	// Scenario is the sensor deployment every zone's engine is built
	// from. Required.
	Scenario scenario.Scenario
	// Seed seeds each engine's localizer (and the scrubber's jitter).
	Seed uint64
	// WeightWorkers bounds the goroutines weighting one measurement's
	// particle subset inside each zone's filter (0 = GOMAXPROCS).
	WeightWorkers int
	// MSWorkers bounds the goroutines climbing mean-shift starts per
	// estimate refresh (0 = GOMAXPROCS).
	MSWorkers int
	// NoTracks disables confirmed-track maintenance over estimates.
	NoTracks bool
	// NoHealth disables the per-sensor health monitor.
	NoHealth bool
	// ReorderWindow overrides the sequence gate's reorder window in
	// rounds (0 = the engine's default).
	ReorderWindow int

	// Listen is the HTTP listen address for Run; empty selects
	// stdin/stdout pipe mode. Ignored by New — embedders mount
	// Handler themselves.
	Listen string
	// ReportEvery is the pipe-mode snapshot cadence in measurements
	// (0 = one sensor round).
	ReportEvery int
	// PipeQueue bounds the pipe-mode ingest queue (0 = 4096); overflow
	// sheds the oldest reading per sensor.
	PipeQueue int

	// WALDir is the durability root for write-ahead logs and
	// checkpoints; empty disables durability.
	WALDir string
	// Fsync is the WAL fsync policy (zero value = always, the safest).
	Fsync wal.FsyncPolicy
	// CheckpointEvery checkpoints a zone every N journaled records
	// (0 = only at shutdown).
	CheckpointEvery int
	// WALSegment rotates WAL segments after this many records (0 = the
	// WAL's default).
	WALSegment int
	// StorageProbe is how often a degraded zone re-tests its WAL for
	// recovery, jittered ±20% (0 = only organic writes recover).
	StorageProbe time.Duration
	// ScrubInterval paces the background integrity scrubber (0 = off).
	ScrubInterval time.Duration

	// MaxZones caps concurrently live zones (0 = 64).
	MaxZones int
	// ZoneMailbox is each zone's mailbox depth in batches (0 = 64).
	ZoneMailbox int
	// ZoneIdle evicts a named zone idle this long (0 = never).
	ZoneIdle time.Duration

	// HTTPQueue bounds concurrently admitted ingest requests (0 = 64).
	HTTPQueue int
	// MaxBody bounds request bodies in bytes (0 = 1 MiB).
	MaxBody int64
	// RetryAfter is the hint on 429 responses (0 = 1s).
	RetryAfter time.Duration
	// Rate caps each sensor's sustained readings/sec (0 = off).
	Rate float64
	// Burst is the per-sensor token-bucket burst (0 = 4×Rate).
	Burst float64
	// ReadTimeout, WriteTimeout and IdleTimeout are the HTTP server's
	// slow-client guards (0 = 15s / 30s / 2m).
	ReadTimeout time.Duration
	// WriteTimeout bounds writing one response (0 = 30s).
	WriteTimeout time.Duration
	// IdleTimeout cuts idle keep-alive connections (0 = 2m).
	IdleTimeout time.Duration
	// Pprof mounts net/http/pprof under /debug/pprof/.
	Pprof bool

	// ClusterSelf is this node's base URL as peers reach it; non-empty
	// enables cluster mode.
	ClusterSelf string
	// ClusterToken guards the /cluster endpoints and outgoing pulls.
	ClusterToken string
	// SeedRoutes, when non-nil, is the static zone-to-node routing
	// table installed at boot (the persisted learned table, when
	// durability is on, is applied on top — highest epoch wins).
	SeedRoutes *cluster.Routes
	// ReplInterval is the standby's idle poll period between
	// replication pulls (0 = the cluster default).
	ReplInterval time.Duration
	// ReplBatch caps WAL records per replication pull (0 = default).
	ReplBatch int

	// Failover enables the probe-driven promoter (requires
	// ClusterSelf and Peers).
	Failover bool
	// Peers are the peer base URLs the failure detector probes.
	Peers []string
	// ProbeInterval is the base peer probe period (0 = 2s).
	ProbeInterval time.Duration
	// SuspectMisses is the consecutive probe misses before suspicion
	// (0 = 3).
	SuspectMisses int
	// HoldDown is the continuous-unreachability window before a
	// suspected peer is declared dead (0 = 10s).
	HoldDown time.Duration
	// MaxPromoteLag refuses unattended promotion above this
	// replication lag in records (0 = must be fully caught up).
	MaxPromoteLag uint64

	// ReadFanout lets a zone primary forward /snapshot and /statez
	// reads to a caught-up standby (requires cluster mode).
	ReadFanout bool
	// FanoutMaxLag is the highest primary-observed standby lag, in
	// records, at which reads still fan out (0 = fully caught up).
	FanoutMaxLag uint64
	// FanoutMinInflight forwards reads only while at least this many
	// writes are in flight (0 = whenever a caught-up standby exists).
	FanoutMinInflight int

	// FS is the filesystem seam all durability I/O goes through; nil
	// means the real filesystem metered onto the storage-fault
	// metrics. Tests inject vfs.Faulty here.
	FS vfs.FS
	// HTTP performs outgoing cluster pulls, failover probes and
	// fan-out forwards (nil = http.DefaultTransport). Tests inject an
	// in-process fabric here.
	HTTP http.RoundTripper
	// Metrics is the process registry every subsystem registers on;
	// nil gets a fresh registry with process metrics.
	Metrics *obs.Registry
	// Log receives recovery, checkpoint and cluster log lines (nil =
	// discard; radlocd passes stderr).
	Log io.Writer
}

// Node is one assembled daemon: zones, durability, cluster, failover,
// scrubber, write pipeline and HTTP API, owned together so they start
// and stop as a unit.
type Node struct {
	cfg    Config
	reg    *obs.Registry
	zs     *zoneSet
	clu    *cluster.Node
	prom   *failover.Promoter
	scr    *scrub.Scrubber
	fanout *readFanout
	ingest *httpingest.Handler
	mux    http.Handler

	startOnce sync.Once
	stopOnce  sync.Once
	stopBG    context.CancelFunc
	closeErr  error
}

// New assembles a node from cfg: it builds the zone runtime, recovers
// every zone with state on disk (synchronously — when New returns,
// the engines hold their pre-crash state), joins the cluster and
// starts standby replication if configured, and builds the HTTP
// handler. Background maintenance (janitor, storage probe, failover
// probes, scrubbing) waits for Start.
func New(cfg Config) (*Node, error) {
	if len(cfg.Scenario.Sensors) == 0 {
		return nil, fmt.Errorf("node: Config.Scenario has no sensors")
	}
	if cfg.Log == nil {
		cfg.Log = io.Discard
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
		obs.RegisterProcessMetrics(reg, time.Now())
	}
	n := &Node{cfg: cfg, reg: reg}

	// build constructs one zone's engine. Every zone shares the
	// deployment, the seed and the feature flags; met is that zone's
	// labeled view of the process registry.
	sc := cfg.Scenario
	build := func(j fusion.Journal, met *obs.Registry) (*fusion.Engine, error) {
		fcfg := fusion.Config{
			Localizer:     sim.LocalizerConfig(sc),
			Sensors:       sc.Sensors,
			Health:        fusion.HealthConfig{Disabled: cfg.NoHealth},
			Journal:       j,
			ReorderWindow: cfg.ReorderWindow,
			Metrics:       met,
		}
		fcfg.Localizer.Seed = cfg.Seed
		fcfg.Localizer.Metrics = met
		fcfg.Localizer.WeightWorkers = cfg.WeightWorkers
		fcfg.Localizer.Workers = cfg.MSWorkers
		if !cfg.NoTracks {
			fcfg.Tracking = &track.Config{}
		}
		return fusion.NewEngine(fcfg)
	}

	// All durability I/O goes through the observed filesystem, so real
	// disk faults (ENOSPC, EIO) land on radloc_storage_faults_total
	// exactly like injected ones do in the chaos tests.
	fsys := cfg.FS
	if fsys == nil {
		fsys = vfs.Observe(vfs.OS{}, reg)
	}
	zs, err := newZoneSet(zoneSetOptions{
		WalRoot: cfg.WALDir, FS: fsys, Fsync: cfg.Fsync,
		CkptEvery: cfg.CheckpointEvery, SegmentRecords: cfg.WALSegment,
		MaxZones: cfg.MaxZones, Mailbox: cfg.ZoneMailbox, IdleAfter: cfg.ZoneIdle,
		Metrics: reg, Log: cfg.Log, Build: build,
	})
	if err != nil {
		return nil, err
	}
	n.zs = zs
	// Recovery at boot: the default zone plus every named zone with
	// state on disk, each from its own WAL directory — newest valid
	// checkpoint plus WAL suffix replay through the live ingest path.
	if err := zs.recoverZones(); err != nil {
		zs.close()
		return nil, err
	}

	if cfg.ClusterSelf != "" {
		var eps cluster.EpochStore = &cluster.MemEpochStore{}
		var rstore cluster.RouteStore
		if cfg.WALDir != "" {
			eps = &fileEpochStore{zs: zs}
			rstore = &fileRouteStore{dir: cfg.WALDir, fs: zs.fs, logw: cfg.Log}
		}
		n.clu, err = cluster.NewNode(cluster.Options{
			Self:         cfg.ClusterSelf,
			Token:        cfg.ClusterToken,
			Resolver:     zs.clusterBackend,
			Epochs:       eps,
			RouteStore:   rstore,
			HTTP:         cfg.HTTP,
			PullInterval: cfg.ReplInterval,
			PullBatch:    cfg.ReplBatch,
			Drop:         zs.manager.Drop,
			Metrics:      reg,
			Log:          log.New(cfg.Log, "", log.LstdFlags),
		})
		if err != nil {
			zs.close()
			return nil, err
		}
		if cfg.SeedRoutes != nil {
			if err := n.clu.SetRoutes(*cfg.SeedRoutes); err != nil {
				n.clu.Close()
				zs.close()
				return nil, err
			}
		}
		// The persisted learned table is applied after the static seed:
		// its entries carry epochs, so anything this node learned before
		// its last shutdown overrides a stale seed (highest epoch wins),
		// while a fresh seed for a brand-new zone still lands.
		if rstore != nil {
			learned, lerr := rstore.Load()
			if lerr != nil {
				n.clu.Close()
				zs.close()
				return nil, lerr
			}
			if len(learned.Zones) > 0 {
				n.clu.LearnRoutes(learned)
			}
		}
		// The scrubber's repair-from-replica path and the write
		// pipeline's fence go through the cluster node.
		zs.clusterNode = n.clu
	}
	if cfg.Failover {
		if n.clu == nil {
			zs.close()
			return nil, fmt.Errorf("node: Failover requires ClusterSelf (the failure detector acts on the cluster layer)")
		}
		if len(cfg.Peers) == 0 {
			n.clu.Close()
			zs.close()
			return nil, fmt.Errorf("node: Failover requires Peers (who to probe)")
		}
		n.prom, err = failover.New(failover.Options{
			Node:          n.clu,
			Self:          cfg.ClusterSelf,
			Peers:         cfg.Peers,
			Token:         cfg.ClusterToken,
			HTTP:          cfg.HTTP,
			Interval:      cfg.ProbeInterval,
			Suspect:       cfg.SuspectMisses,
			HoldDown:      cfg.HoldDown,
			MaxPromoteLag: cfg.MaxPromoteLag,
			Metrics:       reg,
			Log:           log.New(cfg.Log, "", log.LstdFlags),
		})
		if err != nil {
			n.clu.Close()
			zs.close()
			return nil, err
		}
		// Publish the detector's world-view on /cluster/status, so an
		// operator reads suspicion state instead of inferring it from
		// logs.
		n.clu.SetPeersFunc(n.prom.PeerViews)
	}
	if cfg.WALDir != "" && cfg.ScrubInterval > 0 {
		n.scr, err = scrub.New(scrub.Options{
			Targets:  zs.scrubTargets,
			Interval: cfg.ScrubInterval,
			RNG:      rng.NewNamed(cfg.Seed, "scrub"),
			Metrics:  reg,
			Log:      log.New(cfg.Log, "", log.LstdFlags),
		})
		if err != nil {
			n.Shutdown()
			return nil, err
		}
	}
	if cfg.ReadFanout && n.clu != nil {
		n.fanout = newReadFanout(cfg.ClusterSelf, zs, cfg.HTTP,
			cfg.FanoutMaxLag, cfg.FanoutMinInflight, reg)
	}

	n.ingest = newZonedIngest(zs.pipe, httpingest.Options{
		QueueDepth: cfg.HTTPQueue,
		MaxBody:    cfg.MaxBody,
		RetryAfter: cfg.RetryAfter,
		RatePerSec: cfg.Rate,
		Burst:      cfg.Burst,
		Metrics:    reg,
	})
	def := zs.defaultZone()
	n.mux = newMux(serveConfig{
		Engine: def.Engine(), Durable: zoneDurable(def), Ingest: n.ingest,
		Zones: zs, Metrics: reg, Pprof: cfg.Pprof, Cluster: n.clu, Fanout: n.fanout,
		Timeouts: httpTimeouts{Read: cfg.ReadTimeout, Write: cfg.WriteTimeout, Idle: cfg.IdleTimeout},
		Ready: func() bool {
			return n.clu == nil || n.clu.Ready()
		},
	})
	return n, nil
}

// Start launches the node's background maintenance: the storage
// recovery probe, the idle-zone janitor, failover probing and the
// integrity scrubber. ctx bounds the probe and janitor loops;
// Shutdown cancels them too. Safe to call once; a Node that is only
// read from (or driven by tests tick-by-tick) may skip Start
// entirely.
func (n *Node) Start(ctx context.Context) {
	n.startOnce.Do(func() {
		bgCtx, cancel := context.WithCancel(ctx)
		n.stopBG = cancel
		if n.cfg.WALDir != "" && n.cfg.StorageProbe > 0 {
			// Degraded zones re-test their WAL on a jittered cadence so the
			// node exits read-only mode on its own once space frees, even
			// with every agent backed off.
			go n.zs.storageProbeLoop(bgCtx, n.cfg.StorageProbe, n.cfg.Seed)
		}
		if n.cfg.ZoneIdle > 0 {
			interval := n.cfg.ZoneIdle / 4
			if interval < time.Second {
				interval = time.Second
			}
			go n.zs.manager.Janitor(bgCtx, interval)
		}
		if n.prom != nil {
			n.prom.Start()
		}
		if n.scr != nil {
			n.scr.Start()
		}
	})
}

// Handler returns the node's HTTP API — the same mux radlocd serves —
// for mounting in-process: httptest servers, shared muxes, test
// fabrics.
func (n *Node) Handler() http.Handler { return n.mux }

// Pipeline returns the node's write pipeline, the single path every
// mutation takes. Embedders submit batches through it rather than
// touching engines directly.
func (n *Node) Pipeline() *WritePipeline { return n.zs.pipe }

// Cluster returns the node's cluster membership, nil outside cluster
// mode.
func (n *Node) Cluster() *cluster.Node { return n.clu }

// Promoter returns the node's failover promoter, nil unless Failover
// was configured.
func (n *Node) Promoter() *failover.Promoter { return n.prom }

// Shutdown stops the node: scrubber and failover probes first, then
// cluster replication, then every zone — mailboxes drained, reorder
// tails flushed, final checkpoints written, WALs closed. What each
// engine applied is what the next boot recovers. Idempotent; returns
// the first close error.
func (n *Node) Shutdown() error {
	n.stopOnce.Do(func() {
		if n.scr != nil {
			n.scr.Close()
		}
		if n.prom != nil {
			n.prom.Close()
		}
		if n.clu != nil {
			n.clu.Close()
		}
		if n.stopBG != nil {
			n.stopBG()
		}
		n.closeErr = n.zs.close()
	})
	return n.closeErr
}

// ServePipe consumes NDJSON measurements from r through the write
// pipeline, emitting snapshot lines to w on the configured cadence —
// radlocd's pipe mode, callable in-process.
func (n *Node) ServePipe(ctx context.Context, r io.Reader, w io.Writer) error {
	every := n.cfg.ReportEvery
	if every <= 0 {
		every = len(n.cfg.Scenario.Sensors)
	}
	queue := n.cfg.PipeQueue
	if queue <= 0 {
		queue = 4096
	}
	return servePipe(ctx, n.zs, r, w, every, queue)
}

// Run assembles a node from cfg and drives it the way the radlocd
// binary does: HTTP mode when cfg.Listen is set (serving until ctx is
// cancelled, then draining gracefully), pipe mode over stdin/stdout
// otherwise — then shuts the node down, flushing final checkpoints.
func Run(ctx context.Context, cfg Config, stdin io.Reader, stdout io.Writer) error {
	if cfg.ClusterSelf != "" && cfg.Listen == "" {
		return fmt.Errorf("-cluster-self requires -listen (replication is served over HTTP)")
	}
	if cfg.Failover && cfg.ClusterSelf == "" {
		return fmt.Errorf("-failover requires -cluster-self (the failure detector acts on the cluster layer)")
	}
	if cfg.Failover && len(cfg.Peers) == 0 {
		return fmt.Errorf("-failover requires -cluster-peers (who to probe)")
	}
	n, err := New(cfg)
	if err != nil {
		return err
	}
	n.Start(ctx)
	if cfg.Listen != "" {
		// stdout is the log channel in HTTP mode (the API is the data
		// channel); pipe mode reverses that, writing snapshots to stdout.
		err = serveHTTP(ctx, cfg.Listen, n.mux, n.zs.defaultZone().Engine(),
			httpTimeouts{Read: cfg.ReadTimeout, Write: cfg.WriteTimeout, Idle: cfg.IdleTimeout},
			cfg.Pprof, stdout)
	} else {
		err = n.ServePipe(ctx, stdin, stdout)
	}
	// Final checkpoints + WAL sync/close for every zone, even on a
	// serve error: what each engine applied is what the next boot
	// recovers.
	if cerr := n.Shutdown(); err == nil {
		err = cerr
	}
	return err
}
