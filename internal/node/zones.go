package node

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"

	"radloc/internal/cluster"
	"radloc/internal/fusion"
	"radloc/internal/obs"
	"radloc/internal/vfs"
	"radloc/internal/wal"
	"radloc/internal/zone"
)

// zoneSet owns the daemon's sharded runtime: the zone manager plus the
// per-zone durability behind its factory. Every zone gets its own
// fusion engine (built by Build against a zone-labeled metrics view),
// its own WAL directory and checkpoint namespace, and — through
// zone.Resources — its own checkpoint cadence and final-checkpoint
// close hook, all driven from the zone's single-writer event loop.
//
// WAL layout: the default zone lives at the WAL root itself — the
// exact pre-sharding layout, so an existing deployment's state
// recovers in place — and each named zone under <root>/zones/<name>.
// Zone names pass the wire grammar (no path separators, no dots, no
// "..") before they ever touch the filesystem.
type zoneSet struct {
	manager *zone.Manager
	walRoot string // "" = durability off
	fs      vfs.FS
	fsync   wal.FsyncPolicy
	every   int
	segRecs int // WAL segment size in records; 0 = the WAL's default
	reg     *obs.Registry
	logw    io.Writer
	build   func(j fusion.Journal, met *obs.Registry) (*fusion.Engine, error)

	// clusterNode, when non-nil, is the cluster membership this node
	// participates in — installed late by New (the node needs the
	// zoneSet's resolver first). The scrubber's repair-from-replica
	// path goes through it.
	clusterNode *cluster.Node

	// pipe is the zone set's single write path: pipe-mode records, HTTP
	// batches and replicated records all mutate engines through it.
	pipe *WritePipeline
}

// zoneSetOptions configures newZoneSet.
type zoneSetOptions struct {
	// WalRoot is the durability root directory; empty disables
	// durability for every zone.
	WalRoot string
	// FS is the filesystem every zone's WAL, checkpoints and stores go
	// through; nil means the real one. Tests inject vfs.Faulty here to
	// exercise disk faults; production wraps vfs.OS in vfs.Observe so
	// real faults land on radloc_storage_faults_total.
	FS vfs.FS
	// Fsync, CkptEvery and SegmentRecords mirror -fsync,
	// -checkpoint-every and -wal-segment; they apply uniformly to every
	// zone's WAL. SegmentRecords 0 takes the WAL's default.
	Fsync          wal.FsyncPolicy
	CkptEvery      int
	SegmentRecords int
	// MaxZones, Mailbox and IdleAfter mirror -max-zones, -zone-mailbox
	// and -zone-idle; see zone.Options.
	MaxZones  int
	Mailbox   int
	IdleAfter time.Duration
	// Metrics is the process registry; each zone's engine, WAL and
	// checkpointer register on Metrics.With("zone", name), so the
	// existing families gain a zone label instead of new names. nil
	// gets a private registry.
	Metrics *obs.Registry
	// Log receives recovery and checkpoint-failure lines (stderr in the
	// daemon — stdout is the data channel in pipe mode).
	Log io.Writer
	// Build constructs one zone's engine against the given journal and
	// zone-labeled metrics view. Required.
	Build func(j fusion.Journal, met *obs.Registry) (*fusion.Engine, error)
}

// newZoneSet builds the sharded runtime. No zones exist until
// recoverZones or the first routed batch creates them.
func newZoneSet(o zoneSetOptions) (*zoneSet, error) {
	if o.Build == nil {
		return nil, errors.New("zoneSet: Build is required")
	}
	if o.Metrics == nil {
		o.Metrics = obs.NewRegistry()
	}
	if o.Log == nil {
		o.Log = io.Discard
	}
	zs := &zoneSet{
		walRoot: o.WalRoot, fs: vfs.Or(o.FS), fsync: o.Fsync, every: o.CkptEvery,
		segRecs: o.SegmentRecords, reg: o.Metrics, logw: o.Log, build: o.Build,
	}
	m, err := zone.NewManager(zone.Options{
		Factory:   zs.factory,
		MaxZones:  o.MaxZones,
		Mailbox:   o.Mailbox,
		IdleAfter: o.IdleAfter,
		Metrics:   o.Metrics,
	})
	if err != nil {
		return nil, err
	}
	zs.manager = m
	zs.pipe = &WritePipeline{zs: zs}
	return zs, nil
}

// zoneWalDir maps a zone name to its durability directory.
func (zs *zoneSet) zoneWalDir(name string) string {
	if name == zone.DefaultZone {
		return zs.walRoot
	}
	return filepath.Join(zs.walRoot, "zones", name)
}

// factory builds one zone's resources: a fresh engine on a
// zone-labeled metrics view, recovered from the zone's own WAL
// directory when durability is on, with the checkpoint cadence and
// the final checkpoint wired into the zone's event loop. It runs both
// at boot (recoverZones) and lazily when a batch names a novel zone —
// including a zone recreated after idle eviction, which recovers from
// its final checkpoint as if the process had restarted.
func (zs *zoneSet) factory(name string) (zone.Resources, error) {
	met := zs.reg.With("zone", name)
	if zs.walRoot == "" {
		engine, err := zs.build(nil, met)
		if err != nil {
			return zone.Resources{}, err
		}
		return zone.Resources{Engine: engine}, nil
	}
	dir := zs.zoneWalDir(name)
	if err := zs.fs.MkdirAll(dir, 0o755); err != nil {
		return zone.Resources{}, err
	}
	engine, d, err := openDurable(dir, zs.fs, zs.fsync, zs.every, zs.segRecs,
		func(j fusion.Journal) (*fusion.Engine, error) { return zs.build(j, met) },
		met, zs.logw)
	if err != nil {
		return zone.Resources{}, err
	}
	return zone.Resources{
		Engine:     engine,
		AfterBatch: func() { d.maybeCheckpoint(zs.logw) },
		Close:      d.close,
		Aux:        d,
	}, nil
}

// recoverZones brings up the default zone plus every named zone with
// state on disk, so boot replays all recorded zones instead of
// leaving their recovery to first contact. A zone directory past the
// live cap is left on disk with a note — its factory recovers it on
// first contact once other zones have been evicted.
func (zs *zoneSet) recoverZones() error {
	if _, err := zs.manager.Get(zone.DefaultZone); err != nil {
		return err
	}
	if zs.walRoot == "" {
		return nil
	}
	entries, err := zs.fs.ReadDir(filepath.Join(zs.walRoot, "zones"))
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	for _, name := range names {
		if zone.ValidateName(name) != nil || name == zone.DefaultZone {
			fmt.Fprintf(zs.logw, "radlocd: ignoring zone directory %q (not a usable zone name)\n", name)
			continue
		}
		if _, err := zs.manager.Get(name); err != nil {
			if errors.Is(err, zone.ErrZoneLimit) {
				fmt.Fprintf(zs.logw, "radlocd: zone %q left on disk (over -max-zones); it recovers on first contact\n", name)
				continue
			}
			return fmt.Errorf("recover zone %q: %w", name, err)
		}
	}
	return nil
}

// defaultZone returns the always-live default zone. recoverZones runs
// before anything can ask for it, so absence is a programming error.
func (zs *zoneSet) defaultZone() *zone.Zone {
	z, ok := zs.manager.Lookup(zone.DefaultZone)
	if !ok {
		panic("radlocd: default zone missing (recoverZones not run)")
	}
	return z
}

// close shuts every zone down: mailboxes drained, reorder-gate tails
// flushed, final checkpoints written, WALs closed.
func (zs *zoneSet) close() error {
	if zs == nil {
		return nil
	}
	return zs.manager.Close()
}

// zoneDurable unwraps the durability handle a zone's factory attached;
// nil when durability is off.
func zoneDurable(z *zone.Zone) *durable {
	d, _ := z.Aux().(*durable)
	return d
}
