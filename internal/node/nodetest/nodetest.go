// Package nodetest holds the daemon-bootstrap scaffolding shared by
// the chaos tests: an in-process HTTP fabric with per-participant
// partition control, a polling wait helper, metric scrapers, and a
// preconfigured delivery agent. The chaos suites (cluster, failover,
// storage) each used to carry their own copy of this machinery; it
// lives once here so a fix to the fabric fixes every suite.
//
// The package deliberately does not import internal/node — it is pure
// transport/testing glue — so in-package node tests can use it
// without an import cycle, and so it stays honest: nothing in here
// can reach into daemon internals.
package nodetest

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"radloc/internal/clock"
	"radloc/internal/rng"
	"radloc/internal/transport"
)

// Fabric maps in-process hosts to their daemon muxes. All traffic —
// client deliveries, replication pulls, failover probes — flows
// through handler lookups here, so a test controls the whole network.
type Fabric struct {
	mu    sync.Mutex
	hosts map[string]http.Handler
}

// NewFabric returns an empty fabric with no hosts registered.
func NewFabric() *Fabric {
	return &Fabric{hosts: make(map[string]http.Handler)}
}

// Add registers (or replaces) a host's handler. Registering nil keeps
// the name known but unreachable — a crashed daemon whose address
// still resolves.
func (f *Fabric) Add(host string, h http.Handler) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.hosts[host] = h
}

// Handler resolves a host to its current handler, nil if dark.
func (f *Fabric) Handler(host string) http.Handler {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.hosts[host]
}

// Link mints one participant's view of the network: its own cut set,
// so a replication path can be severed while client traffic to the
// same host keeps flowing (and vice versa).
func (f *Fabric) Link() *Link {
	return &Link{f: f, down: make(map[string]bool)}
}

// Link is a http.RoundTripper over the fabric with a private cut set.
// Each daemon (and each test client) gets its own, so partitions are
// directional: A may be unable to reach B while B still reaches A.
type Link struct {
	f    *Fabric
	mu   sync.Mutex
	down map[string]bool
}

// Cut severs (v true) or heals (v false) this participant's path to
// one host. Other participants' links are unaffected.
func (l *Link) Cut(host string, v bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.down[host] = v
}

// RoundTrip serves the request in-process against the target host's
// registered handler, or fails as unreachable if the host is dark or
// this link has cut it.
func (l *Link) RoundTrip(req *http.Request) (*http.Response, error) {
	l.mu.Lock()
	down := l.down[req.URL.Host]
	l.mu.Unlock()
	h := l.f.Handler(req.URL.Host)
	if h == nil || down {
		return nil, fmt.Errorf("fabric: host %q unreachable", req.URL.Host)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec.Result(), nil
}

// WaitUntil polls cond every 2ms until it holds, failing the test
// after 10s. The chaos suites run replication and probe loops at
// millisecond intervals, so convergence is near-immediate and the
// long deadline only matters on a genuinely wedged node.
func WaitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// HTTPStatus issues one request against a mux and returns the
// recorder and status code.
func HTTPStatus(mux http.Handler, method, url, body string) (*httptest.ResponseRecorder, int) {
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req := httptest.NewRequest(method, url, rd)
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, req)
	return rec, rec.Code
}

// ScrapeGauge pulls one metric value off a node's /metrics by line
// prefix. name may be bare ("radloc_repl_lag_seconds") or carry a
// label set (`radloc_scrub_repairs_total{source="local"}`); the
// second return reports whether the series is exposed at all.
func ScrapeGauge(t *testing.T, mux http.Handler, name string) (float64, bool) {
	t.Helper()
	rec, code := HTTPStatus(mux, http.MethodGet, "http://x/metrics", "")
	if code != http.StatusOK {
		t.Fatalf("/metrics = HTTP %d", code)
	}
	for _, line := range strings.Split(rec.Body.String(), "\n") {
		if strings.HasPrefix(line, name+" ") || strings.HasPrefix(line, name+"{") {
			fields := strings.Fields(line)
			v, err := strconv.ParseFloat(fields[len(fields)-1], 64)
			if err != nil {
				t.Fatalf("unparseable metric line %q", line)
			}
			return v, true
		}
	}
	return 0, false
}

// NewClient builds a delivery agent aimed at url over its own fabric
// link, with redirect following live and retry timings scaled down to
// test speed.
func NewClient(t *testing.T, fab *Fabric, url, name, zone string) *transport.Client {
	t.Helper()
	c, err := transport.NewClient(transport.Options{
		URL: url, Zone: zone, HTTP: fab.Link(), Clock: clock.Real{},
		RNG:     rng.NewNamed(7, "cluster-test/"+name),
		Backoff: transport.Backoff{Base: time.Millisecond, Cap: 10 * time.Millisecond},
		Breaker: transport.BreakerConfig{FailureThreshold: 3, Cooldown: 10 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// SendRounds delivers readings perRound at a time — one sensor-round
// per request — failing the test on any delivery error.
func SendRounds(t *testing.T, c *transport.Client, readings []transport.Reading, perRound int) {
	t.Helper()
	for i := 0; i < len(readings); i += perRound {
		end := i + perRound
		if end > len(readings) {
			end = len(readings)
		}
		if err := c.Send(context.Background(), readings[i:end]); err != nil {
			t.Fatal(err)
		}
	}
}
