package node

// Cluster failover integration tests: two full daemon stacks (zone
// manager, per-zone WAL, fusion engines, /cluster endpoints, write
// fencing) wired over an in-process network. The headline criterion
// mirrors the single-node durability one: kill the primary without
// any shutdown flush, promote the standby, redeliver the stream
// at-least-once, and the promoted node's state must be bit-identical
// to a never-clustered, never-interrupted run.

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"radloc/internal/cluster"
	"radloc/internal/fusion"
	"radloc/internal/node/nodetest"
	"radloc/internal/obs"
	"radloc/internal/scenario"
	"radloc/internal/sim"
	"radloc/internal/wal"
)

// clusterTestNode is one daemon's full stack — a real node.Node plus
// the white-box aliases the assertions reach into. node is nil for the
// standalone (non-clustered) reference deployment.
type clusterTestNode struct {
	n    *Node
	zs   *zoneSet
	node *cluster.Node
	mux  http.Handler
	reg  *obs.Registry
	link *nodetest.Link
}

// clusterTestBuild is the engine constructor every cluster-test node
// shares — identical engines (same scenario, same seed) make state
// comparisons across nodes meaningful, and a crash-restart over a
// node's directory must use the same shape or checkpoints will not
// import.
func clusterTestBuild() func(fusion.Journal, *obs.Registry) (*fusion.Engine, error) {
	sc := scenario.A(50, false)
	return func(j fusion.Journal, met *obs.Registry) (*fusion.Engine, error) {
		fcfg := fusion.Config{Localizer: sim.LocalizerConfig(sc), Sensors: sc.Sensors, Journal: j, Metrics: met}
		fcfg.Localizer.Seed = 3
		// A one-round reorder window keeps the WAL advancing as each
		// round lands, so replication lag and retention are exercised
		// with a 6-round stream (the default window of 4 would hold
		// most of it in the gate, journaling almost nothing).
		fcfg.ReorderWindow = 1
		return fusion.NewEngine(fcfg)
	}
}

// newClusterTestNode assembles one daemon through the production path
// — node.New on a Config — over the in-process fabric. Every node
// builds identical engines (same scenario, same seed), so state
// comparisons across nodes are meaningful.
func newClusterTestNode(t *testing.T, fab *nodetest.Fabric, host string, routes *cluster.Routes, mods ...func(*Config)) *clusterTestNode {
	t.Helper()
	return newClusterTestNodeAt(t, fab, host, routes, t.TempDir(), mods...)
}

// newClusterTestNodeAt is newClusterTestNode with the WAL root
// exposed, so a killed node can be resurrected over its own surviving
// state — the divergence-repair scenario.
func newClusterTestNodeAt(t *testing.T, fab *nodetest.Fabric, host string, routes *cluster.Routes, walRoot string, mods ...func(*Config)) *clusterTestNode {
	t.Helper()
	reg := obs.NewRegistry()
	link := fab.Link()
	cfg := Config{
		Scenario: scenario.A(50, false),
		Seed:     3,
		// No tracking: the cluster assertions compare estimates and
		// health, and the reference node must match shape-for-shape.
		NoTracks: true,
		// A one-round reorder window keeps the WAL advancing as each
		// round lands, so replication lag and retention are exercised
		// with a 6-round stream (the default window of 4 would hold
		// most of it in the gate, journaling almost nothing).
		ReorderWindow:   1,
		WALDir:          walRoot,
		Fsync:           wal.FsyncNever,
		CheckpointEvery: 50,
		WALSegment:      16,
		MaxZones:        8,
		ZoneMailbox:     64,
		HTTPQueue:       256,
		HTTP:            link,
		Metrics:         reg,
	}
	if routes != nil {
		cfg.ClusterSelf = "http://" + host
		cfg.SeedRoutes = routes
		cfg.ReplInterval = time.Millisecond
	}
	for _, mod := range mods {
		mod(&cfg)
	}
	nd, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = nd.Shutdown() })
	n := &clusterTestNode{n: nd, zs: nd.zs, node: nd.clu, mux: nd.Handler(), reg: reg, link: link}
	fab.Add(host, n.mux)
	return n
}

// backend resolves the node's default-zone cluster backend.
func (n *clusterTestNode) backend(t *testing.T, zone string) cluster.Backend {
	t.Helper()
	b, err := n.zs.clusterBackend(zone)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// status fetches one zone's replication status row.
func (n *clusterTestNode) status(zone string) (cluster.ZoneStatus, bool) {
	for _, st := range n.node.Status() {
		if st.Zone == zone {
			return st, true
		}
	}
	return cluster.ZoneStatus{}, false
}

// normalizedState releases the engine's reorder-gate tail, refreshes,
// and renders the snapshot and health with the delivery counters
// zeroed — the bit-identical comparison form the chaos tests use.
func normalizedState(t *testing.T, eng *fusion.Engine) ([]byte, []byte) {
	t.Helper()
	if _, err := eng.FlushPending(); err != nil {
		t.Fatal(err)
	}
	eng.Refresh()
	s := eng.Snapshot()
	s.Delivery = fusion.DeliveryStats{}
	snap, err := json.Marshal(snapshotToJSON(s))
	if err != nil {
		t.Fatal(err)
	}
	health, err := json.Marshal(healthToJSON(s.Health))
	if err != nil {
		t.Fatal(err)
	}
	return snap, health
}

// TestClusterFailoverBitIdentical is the headline cluster criterion:
// half the stream lands on the primary, the primary is killed with no
// shutdown flush of any kind, the standby is promoted, and the whole
// stream is redelivered to it at-least-once. The promoted node must
// end bit-identical to a standalone daemon that consumed the stream
// uninterrupted — replication plus the dedup gate lose nothing and
// double-apply nothing across a failover.
func TestClusterFailoverBitIdentical(t *testing.T) {
	fab := nodetest.NewFabric()
	routes := cluster.Routes{Zones: map[string]cluster.Route{
		"default": {Primary: "http://a", Standby: "http://b"},
	}}
	a := newClusterTestNode(t, fab, "a", &routes)
	b := newClusterTestNode(t, fab, "b", &routes)
	clean := newClusterTestNode(t, fab, "c", nil)

	sensors := len(scenario.A(50, false).Sensors)
	readings := chaosReadings(sensors)
	half := (len(readings) / (2 * sensors)) * sensors // whole-round boundary

	// Reference: the same stream, one node, no interruptions.
	nodetest.SendRounds(t, nodetest.NewClient(t, fab, "http://c", "clean", ""), readings, sensors)
	wantSnap, wantHealth := normalizedState(t, clean.zs.defaultZone().Engine())

	// Primary takes the first half; the standby replicates it.
	nodetest.SendRounds(t, nodetest.NewClient(t, fab, "http://a", "pre-kill", ""), readings[:half], sensors)
	aBack := a.backend(t, "default")
	nodetest.WaitUntil(t, "standby catch-up before the kill", func() bool {
		st, ok := b.status("default")
		return ok && st.CaughtUp && b.backend(t, "default").Offset() == aBack.Offset()
	})

	// Kill the primary: sever it and abandon its zone set — no final
	// checkpoint, no gate flush, no WAL sync. Observationally SIGKILL.
	b.link.Cut("a", true)

	epoch, err := b.node.Promote("default")
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 2 {
		t.Fatalf("promote epoch = %d, want 2", epoch)
	}
	if _, code := nodetest.HTTPStatus(b.mux, http.MethodGet, "http://b/readyz", ""); code != http.StatusOK {
		t.Fatalf("promoted node /readyz = %d, want 200", code)
	}

	// At-least-once redelivery of the whole stream to the new primary:
	// the sequence gate absorbs everything replication already applied.
	nodetest.SendRounds(t, nodetest.NewClient(t, fab, "http://b", "post-kill", ""), readings, sensors)

	gotSnap, gotHealth := normalizedState(t, b.zs.defaultZone().Engine())
	if !bytes.Equal(wantSnap, gotSnap) {
		t.Errorf("promoted standby diverged from clean run:\nclean:    %s\npromoted: %s", wantSnap, gotSnap)
	}
	if !bytes.Equal(wantHealth, gotHealth) {
		t.Errorf("promoted standby health diverged:\nclean:    %s\npromoted: %s", wantHealth, gotHealth)
	}

	// The dead primary stays fenced: a pull carrying the new epoch gets
	// 409 and forces it to step down, even if it limps back.
	b.link.Cut("a", false)
	rec, code := nodetest.HTTPStatus(a.mux, http.MethodGet, "http://a/cluster/wal/default?from=0&epoch=2", "")
	if code != http.StatusConflict {
		t.Fatalf("stale primary served a newer-epoch pull: HTTP %d: %s", code, rec.Body.String())
	}
	if _, code := nodetest.HTTPStatus(a.mux, http.MethodPost, "http://a/measurements", `{"sensorId":0,"cpm":12}`); code != http.StatusServiceUnavailable {
		t.Fatalf("fenced old primary accepted a write: HTTP %d", code)
	}
}

// TestClusterStandbyRedirectsWrites drives a full loop through the
// routing layer: an agent aimed at the standby is 307'd to the
// primary, follows the redirect through its normal retry machinery,
// and the applied records replicate back to the very standby that
// bounced them.
func TestClusterStandbyRedirectsWrites(t *testing.T) {
	fab := nodetest.NewFabric()
	routes := cluster.Routes{Zones: map[string]cluster.Route{
		"default": {Primary: "http://a", Standby: "http://b"},
	}}
	a := newClusterTestNode(t, fab, "a", &routes)
	b := newClusterTestNode(t, fab, "b", &routes)

	// Raw request: the standby answers 307 with the primary's URL.
	rec, code := nodetest.HTTPStatus(b.mux, http.MethodPost, "http://b/measurements", `[{"sensorId":0,"cpm":12,"step":0,"seq":1}]`)
	if code != http.StatusTemporaryRedirect {
		t.Fatalf("standby write = HTTP %d, want 307", code)
	}
	if loc := rec.Header().Get("Location"); loc != "http://a/measurements" {
		t.Fatalf("redirect Location = %q", loc)
	}

	// Agent aimed at the standby: delivery succeeds via the redirect.
	sensors := len(scenario.A(50, false).Sensors)
	readings := chaosReadings(sensors)
	c := nodetest.NewClient(t, fab, "http://b", "redirected", "")
	nodetest.SendRounds(t, c, readings, sensors)
	st := c.Stats()
	if st.Redirects != 1 || st.Delivered != uint64(len(readings)) {
		t.Fatalf("client stats = %+v, want 1 redirect and full delivery", st)
	}

	aBack := a.backend(t, "default")
	if aBack.Offset() == 0 {
		t.Fatal("primary journaled nothing")
	}
	nodetest.WaitUntil(t, "replication back to the standby", func() bool {
		return b.backend(t, "default").Offset() == aBack.Offset()
	})
}

// TestClusterPartitionedStandbyDegrades pins the graceful-degradation
// contract: a partitioned standby keeps serving reads, reports itself
// unready and lagging (gauge and status), refuses writes (no split
// brain), and catches up cleanly after the heal — while the primary
// keeps accepting writes throughout.
func TestClusterPartitionedStandbyDegrades(t *testing.T) {
	fab := nodetest.NewFabric()
	routes := cluster.Routes{Zones: map[string]cluster.Route{
		"default": {Primary: "http://a", Standby: "http://b"},
	}}
	a := newClusterTestNode(t, fab, "a", &routes)
	b := newClusterTestNode(t, fab, "b", &routes)

	sensors := len(scenario.A(50, false).Sensors)
	readings := chaosReadings(sensors)
	agent := nodetest.NewClient(t, fab, "http://a", "partition", "")
	nodetest.SendRounds(t, agent, readings[:2*sensors], sensors)
	aBack := a.backend(t, "default")
	nodetest.WaitUntil(t, "initial catch-up", func() bool {
		return aBack.Offset() > 0 && b.backend(t, "default").Offset() == aBack.Offset()
	})
	nodetest.WaitUntil(t, "initial readiness", func() bool {
		_, code := nodetest.HTTPStatus(b.mux, http.MethodGet, "http://b/readyz", "")
		return code == http.StatusOK
	})

	// Partition the standby's replication path only.
	offBefore := aBack.Offset()
	b.link.Cut("a", true)
	nodetest.WaitUntil(t, "standby to notice the partition", func() bool {
		st, ok := b.status("default")
		return ok && !st.CaughtUp && st.LastError != ""
	})

	// Writes keep flowing to the primary through the partition.
	nodetest.SendRounds(t, agent, readings[2*sensors:4*sensors], sensors)
	if got := aBack.Offset(); got <= offBefore {
		t.Fatalf("primary stopped journaling under partition (offset %d, was %d)", got, offBefore)
	}
	// The standby degrades honestly: unready, lag gauge climbing,
	// reads still served, writes still refused.
	if _, code := nodetest.HTTPStatus(b.mux, http.MethodGet, "http://b/readyz", ""); code != http.StatusServiceUnavailable {
		t.Fatalf("partitioned standby /readyz = %d, want 503", code)
	}
	nodetest.WaitUntil(t, "lag gauge to rise", func() bool {
		v, ok := nodetest.ScrapeGauge(t, b.mux, "radloc_repl_lag_seconds")
		return ok && v > 0
	})
	if _, code := nodetest.HTTPStatus(b.mux, http.MethodGet, "http://b/snapshot", ""); code != http.StatusOK {
		t.Fatalf("partitioned standby stopped serving reads")
	}
	if _, code := nodetest.HTTPStatus(b.mux, http.MethodPost, "http://b/measurements", `[{"sensorId":1,"cpm":14}]`); code != http.StatusTemporaryRedirect {
		t.Fatalf("partitioned standby write = %d, want 307 (split brain guard)", code)
	}

	// Heal: the standby drains the backlog and is ready again.
	b.link.Cut("a", false)
	nodetest.WaitUntil(t, "catch-up after heal", func() bool {
		st, ok := b.status("default")
		return ok && st.CaughtUp && b.backend(t, "default").Offset() == aBack.Offset()
	})
	nodetest.WaitUntil(t, "readiness after heal", func() bool {
		_, code := nodetest.HTTPStatus(b.mux, http.MethodGet, "http://b/readyz", "")
		return code == http.StatusOK
	})
}

// TestClusterLiveMigration walks the migrate sequence the ctl command
// drives — replicate, catch up, drain, promote, release — for a named
// zone, with the source node alive throughout.
func TestClusterLiveMigration(t *testing.T) {
	fab := nodetest.NewFabric()
	empty := cluster.Routes{}
	a := newClusterTestNode(t, fab, "a", &empty)
	b := newClusterTestNode(t, fab, "b", &empty)

	sensors := len(scenario.A(50, false).Sensors)
	readings := chaosReadings(sensors)
	agent := nodetest.NewClient(t, fab, "http://a", "migrate", "west")
	nodetest.SendRounds(t, agent, readings[:3*sensors], sensors)
	aBack := a.backend(t, "west")
	if aBack.Offset() == 0 {
		t.Fatal("source journaled nothing")
	}

	// Step 1: target warms up against the live owner.
	if err := b.node.Replicate("west", "http://a"); err != nil {
		t.Fatal(err)
	}
	nodetest.WaitUntil(t, "migration target catch-up", func() bool {
		st, ok := b.status("west")
		return ok && st.CaughtUp && b.backend(t, "west").Offset() == aBack.Offset()
	})

	// Step 2: drain the source; writes bounce with Retry-After so the
	// agent's retry machinery holds them instead of losing them.
	if err := a.node.SetDraining("west", true); err != nil {
		t.Fatal(err)
	}
	rec, code := nodetest.HTTPStatus(a.mux, http.MethodPost, "http://a/zones/west/measurements", `[{"sensorId":2,"cpm":13}]`)
	if code != http.StatusServiceUnavailable || rec.Header().Get("Retry-After") == "" {
		t.Fatalf("draining write = HTTP %d (Retry-After %q), want 503 with hint", code, rec.Header().Get("Retry-After"))
	}
	head := aBack.Offset()
	nodetest.WaitUntil(t, "final records to reach the target", func() bool {
		return b.backend(t, "west").Offset() >= head
	})

	// Step 3: cut over.
	if _, err := b.node.Promote("west"); err != nil {
		t.Fatal(err)
	}
	if err := a.node.Release("west", "http://b"); err != nil {
		t.Fatal(err)
	}
	if _, ok := a.zs.manager.Lookup("west"); ok {
		t.Fatal("released zone still live on the source")
	}

	// The source now redirects the zone's writes to the new owner, and
	// the agent follows without losing a reading.
	rec, code = nodetest.HTTPStatus(a.mux, http.MethodPost, "http://a/zones/west/measurements", `[{"sensorId":2,"cpm":13,"step":3,"seq":4}]`)
	if code != http.StatusTemporaryRedirect || rec.Header().Get("Location") != "http://b/zones/west/measurements" {
		t.Fatalf("post-release write = HTTP %d Location %q", code, rec.Header().Get("Location"))
	}
	before := b.backend(t, "west").Offset()
	nodetest.SendRounds(t, agent, readings[3*sensors:], sensors)
	if st := agent.Stats(); st.Redirects == 0 {
		t.Fatalf("agent never followed the migration redirect: %+v", st)
	}
	if got := b.backend(t, "west").Offset(); got <= before {
		t.Fatalf("new owner journaled nothing after cutover (offset %d)", got)
	}
}
