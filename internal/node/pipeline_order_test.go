package node

// Error-ordering contract of the unified write pipeline: when several
// refusal conditions hold at once, every entry point reports them in
// the same order —
//
//	cluster fence (307/503) → admission (415/413/429) → storage (507)
//
// The tests stack all conditions, assert the front verdict, then
// strip one condition at a time until only the storage fault is left.
// Because all three entry points (HTTP ingest, pipe-mode Submit,
// replication Apply) share the WritePipeline, the ordering is pinned
// by construction — these tests keep it pinned if the boundaries ever
// grow shortcut paths again.

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"syscall"
	"testing"

	"radloc/internal/cluster"
	"radloc/internal/fusion"
	"radloc/internal/httpingest"
	"radloc/internal/node/nodetest"
	"radloc/internal/vfs"
	"radloc/internal/wal"
	"radloc/internal/zone"
)

// faultyFS mods a test node onto an injectable filesystem with a
// tight request-body bound, so both the storage (507) and admission
// (413) conditions can be raised at will.
func faultyFS(f *vfs.Faulty) func(*Config) {
	return func(c *Config) {
		c.FS = f
		c.MaxBody = 64
	}
}

// degrade makes every WAL write and sync fail like a full disk.
func degrade(f *vfs.Faulty) {
	f.FailWrites(syscall.ENOSPC, false)
	f.FailSyncs(syscall.ENOSPC)
}

// postAs issues a POST with an explicit Content-Type ("" = none).
func postAs(mux http.Handler, url, body, contentType string) int {
	req := httptest.NewRequest(http.MethodPost, url, strings.NewReader(body))
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, req)
	return rec.Code
}

const (
	orderSmallBody = `[{"sensorId":0,"cpm":10}]`                                                // under the 64-byte bound
	orderBigBody   = `[{"sensorId":0,"cpm":10},{"sensorId":1,"cpm":11},{"sensorId":2,"cpm":12}]` // over it
)

// TestWriteErrorOrderingHTTP stacks fence + admission + storage on
// the HTTP entry point and strips front-to-back: the standby fence
// answers before any byte of the body is judged, the admission checks
// (content type, then size, then rate) answer before the disk is
// touched, and only a request that passes them all sees the 507.
func TestWriteErrorOrderingHTTP(t *testing.T) {
	fab := nodetest.NewFabric()
	routes := cluster.Routes{Zones: map[string]cluster.Route{
		"default": {Primary: "http://a", Standby: "http://b"},
	}}
	fsA, fsB := vfs.NewFaulty(nil, vfs.FaultConfig{Seed: 1}), vfs.NewFaulty(nil, vfs.FaultConfig{Seed: 2})
	a := newClusterTestNode(t, fab, "a", &routes, faultyFS(fsA))
	b := newClusterTestNode(t, fab, "b", &routes, faultyFS(fsB))
	degrade(fsA)
	degrade(fsB)

	steps := []struct {
		name string
		code int
		do   func() int
	}{
		{"fence beats admission and storage", http.StatusTemporaryRedirect, func() int {
			// Standby, wrong content type, oversized body, dead disk: 307.
			return postAs(b.mux, "http://b/measurements", orderBigBody, "text/plain")
		}},
		{"content type beats size and storage", http.StatusUnsupportedMediaType, func() int {
			return postAs(a.mux, "http://a/measurements", orderBigBody, "text/plain")
		}},
		{"body bound beats storage", http.StatusRequestEntityTooLarge, func() int {
			return postAs(a.mux, "http://a/measurements", orderBigBody, "application/json")
		}},
		{"storage answers last", http.StatusInsufficientStorage, func() int {
			return postAs(a.mux, "http://a/measurements", orderSmallBody, "application/json")
		}},
	}
	for _, s := range steps {
		t.Run(s.name, func(t *testing.T) {
			if code := s.do(); code != s.code {
				t.Fatalf("HTTP %d, want %d", code, s.code)
			}
		})
	}

	// Rate limiting is admission too: a rate-refused reading sheds 429
	// before the pipeline ever offers it to the dead disk.
	fsR := vfs.NewFaulty(nil, vfs.FaultConfig{Seed: 3})
	r := newClusterTestNode(t, fab, "r", nil, faultyFS(fsR), func(c *Config) {
		c.Rate = 1e-9 // first token arrives in ~30 years
	})
	degrade(fsR)
	// The bucket starts with its 1-token minimum burst: the first post
	// pays it, passes admission, and hits the dead disk (507). The
	// second finds the bucket dry and sheds 429 before the pipeline
	// ever offers the reading to storage.
	if code := postAs(r.mux, "http://r/measurements", orderSmallBody, "application/json"); code != http.StatusInsufficientStorage {
		t.Fatalf("first rate-budgeted write = HTTP %d, want 507", code)
	}
	if code := postAs(r.mux, "http://r/measurements", orderSmallBody, "application/json"); code != http.StatusTooManyRequests {
		t.Fatalf("rate-exhausted write on a dead disk = HTTP %d, want 429", code)
	}
}

// TestWriteErrorOrderingPipe drives the same stack through
// WritePipeline.Submit — the pipe-mode entry point — where the
// verdicts are errors instead of status codes but the order is the
// same: fence, then zone admission, then the journal.
func TestWriteErrorOrderingPipe(t *testing.T) {
	fab := nodetest.NewFabric()
	routes := cluster.Routes{Zones: map[string]cluster.Route{
		"default": {Primary: "http://a", Standby: "http://b"},
		"aux":     {Primary: "http://a", Standby: "http://b"},
	}}
	fsB := vfs.NewFaulty(nil, vfs.FaultConfig{Seed: 4})
	newClusterTestNode(t, fab, "a", &routes)
	b := newClusterTestNode(t, fab, "b", &routes, faultyFS(fsB), func(c *Config) {
		c.MaxZones = 1 // the recovered default zone exhausts the budget
	})
	fsC := vfs.NewFaulty(nil, vfs.FaultConfig{Seed: 5})
	c := newClusterTestNode(t, fab, "c", nil, faultyFS(fsC), func(c *Config) {
		c.MaxZones = 1
	})
	degrade(fsB)
	degrade(fsC)

	batch := []fusion.Meas{{SensorID: 0, CPM: 10}}
	ctx := context.Background()

	// Standby + zone limit + dead disk: the fence answers first.
	_, err := b.n.Pipeline().Submit(ctx, "aux", batch)
	if !errors.Is(err, httpingest.ErrNotWritable) {
		t.Fatalf("standby submit error = %v, want the fence's ErrNotWritable", err)
	}
	// No fence (standalone node): zone admission answers before the
	// journal is touched.
	_, err = c.n.Pipeline().Submit(ctx, "aux", batch)
	if !errors.Is(err, zone.ErrZoneLimit) {
		t.Fatalf("over-limit submit error = %v, want ErrZoneLimit", err)
	}
	// Admission clean: the journal fault is finally the answer.
	var je *fusion.JournalError
	if _, err = c.n.Pipeline().Submit(ctx, zone.DefaultZone, batch); !errors.As(err, &je) {
		t.Fatalf("degraded-storage submit error = %v, want JournalError", err)
	}
}

// TestWriteErrorOrderingReplication covers the replicated entry: the
// epoch fence at the cluster boundary answers before anything else,
// offset-continuity sequencing answers before the journal, and the
// journal fault surfaces only once continuity holds.
func TestWriteErrorOrderingReplication(t *testing.T) {
	fab := nodetest.NewFabric()
	routes := cluster.Routes{Zones: map[string]cluster.Route{
		"default": {Primary: "http://a", Standby: "http://b"},
	}}
	fsA := vfs.NewFaulty(nil, vfs.FaultConfig{Seed: 6})
	a := newClusterTestNode(t, fab, "a", &routes, faultyFS(fsA))
	newClusterTestNode(t, fab, "b", &routes)

	// Sequencing beats storage: on a dead disk, a discontinuous batch
	// is refused for its gap, not for the disk.
	fsC := vfs.NewFaulty(nil, vfs.FaultConfig{Seed: 7})
	c := newClusterTestNode(t, fab, "c", nil, faultyFS(fsC))
	degrade(fsC)
	rec := cluster.RecordAt{Off: 999, Rec: wal.Record{SensorID: 0, CPM: 10, Seq: 1}}
	err := c.n.Pipeline().Apply(c.zs.defaultZone(), []cluster.RecordAt{rec})
	if err == nil || !strings.Contains(err.Error(), "offset gap") {
		t.Fatalf("gapped apply error = %v, want an offset-gap refusal", err)
	}
	// Continuity holds: the journal fault is the answer, and nothing
	// was applied (journal-before-apply survives on this path too).
	rec.Off = 0
	err = c.n.Pipeline().Apply(c.zs.defaultZone(), []cluster.RecordAt{rec})
	if err == nil || !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("degraded apply error = %v, want ENOSPC", err)
	}

	// The epoch fence answers ahead of both, dead disk and all: a pull
	// carrying a newer epoch is refused 409 before any record moves.
	degrade(fsA)
	if _, code := nodetest.HTTPStatus(a.mux, http.MethodGet, "http://a/cluster/wal/default?from=0&epoch=99", ""); code != http.StatusConflict {
		t.Fatalf("newer-epoch pull on a degraded primary = HTTP %d, want 409", code)
	}
}
