package node

import (
	"context"
	"fmt"

	"radloc/internal/cluster"
	"radloc/internal/fusion"
	"radloc/internal/httpingest"
	"radloc/internal/zone"
)

// WritePipeline is the node's single write path. Every mutation of a
// zone's engine — a pipe-mode stdin record, an HTTP measurement batch,
// a replicated WAL record — flows through it, so the invariants fixed
// here hold on every entry point by construction:
//
//	admission → sequencing/dedup → WAL journal → engine apply → ack
//
// Stage order for client writes (Submit): the cluster fence first (a
// standby or draining zone refuses before touching the data), then
// zone admission (mailbox backpressure, zone limit), then — on the
// zone's single-writer event loop — the sequence gate's dedup/reorder,
// the journal-before-apply WAL append (a degraded disk vetoes the
// apply with fusion.JournalError), the engine apply, and finally the
// ack carried back on the envelope's reply channel.
//
// Replicated records (Apply) enter below the fence and the gate: they
// were fenced by the cluster layer's epoch check and sequenced by the
// primary, so the pipeline enforces offset continuity, journals, and
// applies through the engine's replay entry — the same code path boot
// recovery uses, which is what keeps a caught-up standby bit-identical
// to its primary.
type WritePipeline struct {
	zs *zoneSet
}

// Fence is the pipeline's admission gate against the cluster's write
// routing: nil when this node is the zone's live primary (or there is
// no cluster), cluster.NotPrimaryError for a standby (with the
// redirect target when known), cluster.ErrDraining mid-cutover. The
// HTTP boundary renders these as 307/503 before reading the body; the
// pipe boundary counts them as refused readings.
func (p *WritePipeline) Fence(zoneName string) error {
	if n := p.zs.clusterNode; n != nil {
		return n.AdmitWrite(zoneName)
	}
	return nil
}

// Submit pushes one client-origin batch through the full pipeline:
// fence, zone admission, and — on the zone's event loop — dedup,
// journal-before-apply and ack. A fence refusal is wrapped in
// httpingest.ErrNotWritable so the HTTP boundary's status mapping
// (503 + Retry-After: hold the batch, retry elsewhere) applies even
// when ownership moved between the mux-level fence and the apply.
func (p *WritePipeline) Submit(ctx context.Context, zoneName string, ms []fusion.Meas) (fusion.BatchResult, error) {
	if err := p.Fence(zoneName); err != nil {
		return fusion.BatchResult{}, fmt.Errorf("%w: %v", httpingest.ErrNotWritable, err)
	}
	return p.zs.manager.Submit(ctx, zoneName, ms)
}

// Apply pushes replicated records through the pipeline's lower half:
// offset-continuity sequencing, WAL journal, engine apply via the
// replay entry, then the zone's checkpoint cadence. WAL order stays
// application order, exactly as on the live write path.
func (p *WritePipeline) Apply(z *zone.Zone, recs []cluster.RecordAt) error {
	d := zoneDurable(z)
	eng := z.Engine()
	offset := func() uint64 {
		if d != nil {
			d.j.mu.Lock()
			defer d.j.mu.Unlock()
			return d.j.log.Offset()
		}
		return eng.Snapshot().Journaled
	}
	for _, ra := range recs {
		if cur := offset(); ra.Off != cur {
			return fmt.Errorf("replication offset gap: got %d, local head %d", ra.Off, cur)
		}
		if d != nil {
			d.j.mu.Lock()
			_, err := d.j.log.Append(ra.Rec)
			d.j.mu.Unlock()
			if err != nil {
				return err
			}
		}
		eng.Replay(fusion.Meas{SensorID: ra.Rec.SensorID, CPM: ra.Rec.CPM, Step: ra.Rec.Step, Seq: ra.Rec.Seq})
	}
	if d != nil {
		d.maybeCheckpoint(p.zs.logw)
	}
	return nil
}

// Resolver adapts the pipeline into the HTTP ingest boundary's Sink
// resolver: every valid zone name resolves to a sink that submits
// through the full pipeline.
func (p *WritePipeline) Resolver() httpingest.Resolver {
	return func(name string) (httpingest.Sink, error) {
		return pipelineSink{p: p, name: name}, nil
	}
}

// pipelineSink binds one zone name to the pipeline for the HTTP
// ingest handler.
type pipelineSink struct {
	p    *WritePipeline
	name string
}

// Submit implements httpingest.Sink through the pipeline.
func (s pipelineSink) Submit(ctx context.Context, ms []fusion.Meas) (fusion.BatchResult, error) {
	return s.p.Submit(ctx, s.name, ms)
}
