package node

// Storage fault-tolerance integration tests: the acceptance criteria
// of the disk-fault work. An ENOSPC window mid-delivery must cost the
// pipeline nothing but 507 round-trips (agents spool through it and
// the final state is bit-identical to an undisturbed run), and a byte
// flipped in cold WAL storage must be detected, quarantined and
// repaired — from a caught-up replica when the cluster has one, from
// the local engine otherwise — with zero acknowledged-durable records
// lost across a crash-restart.

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"syscall"
	"testing"
	"time"

	"radloc/internal/clock"
	"radloc/internal/cluster"
	"radloc/internal/fusion"
	"radloc/internal/httpingest"
	"radloc/internal/node/nodetest"
	"radloc/internal/obs"
	"radloc/internal/rng"
	"radloc/internal/scenario"
	"radloc/internal/scrub"
	"radloc/internal/transport"
	"radloc/internal/vfs"
	"radloc/internal/wal"
	"radloc/internal/zone"
)

// enospcWindowRT aligns a disk-fault injector with a virtual-time
// window on every request, and on the first 507 it observes probes
// /readyz mid-outage — the only moment the degraded surface is
// visible from outside.
type enospcWindowRT struct {
	inner    http.Handler
	clk      *clock.Fake
	faulty   *vfs.Faulty
	from, to time.Time

	sawReadyzCode   int
	sawReadyzHeader string
}

func (w *enospcWindowRT) RoundTrip(req *http.Request) (*http.Response, error) {
	now := w.clk.Now()
	if w.to.After(w.from) && !now.Before(w.from) && now.Before(w.to) {
		w.faulty.FailWrites(syscall.ENOSPC, false)
		w.faulty.FailSyncs(syscall.ENOSPC)
	} else {
		w.faulty.Heal()
	}
	rec := httptest.NewRecorder()
	w.inner.ServeHTTP(rec, req)
	if rec.Code == http.StatusInsufficientStorage && w.sawReadyzCode == 0 {
		rr := httptest.NewRecorder()
		w.inner.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "http://fusion/readyz", nil))
		w.sawReadyzCode = rr.Code
		w.sawReadyzHeader = rr.Header().Get("X-Radloc-Storage")
	}
	return rec.Result(), nil
}

// runENOSPCDelivery pushes the chaos workload through a full durable
// zone stack (spool → client → ingest → engine → WAL on an injected
// filesystem) with an ENOSPC window of the given length opening at
// t=0, and returns the normalized final state plus the WAL directory
// for post-mortem recovery checks.
func runENOSPCDelivery(t *testing.T, window time.Duration) (snap, health []byte, walDir string, ing *httpingest.Handler, dur *durable, rt *enospcWindowRT) {
	t.Helper()
	clk := clock.NewFake(time.Unix(1_700_000_000, 0))
	faulty := vfs.NewFaulty(nil, vfs.FaultConfig{Seed: 11, Clock: clk})
	walDir = t.TempDir()
	zs, err := newZoneSet(zoneSetOptions{
		WalRoot: walDir, FS: faulty, Fsync: wal.FsyncNever, CkptEvery: 50,
		Metrics: obs.NewRegistry(), Log: io.Discard, Build: testZoneBuild(t),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := zs.recoverZones(); err != nil {
		t.Fatal(err)
	}
	dur = zoneDurable(zs.defaultZone())

	ing = newZonedIngest(zs.pipe, httpingest.Options{
		QueueDepth: 256, Clock: clk, RetryAfter: time.Second,
	})
	mux := newMux(serveConfig{
		Engine: zs.defaultZone().Engine(), Durable: dur, Ingest: ing, Zones: zs,
	})
	start := clk.Now()
	rt = &enospcWindowRT{inner: mux, clk: clk, faulty: faulty, from: start, to: start.Add(window)}
	client, err := transport.NewClient(transport.Options{
		URL: "http://fusion", HTTP: rt, Clock: clk,
		RNG:       rng.NewNamed(7, "storage-chaos/jitter"),
		BatchSize: chaosBatch,
		Backoff:   transport.Backoff{Base: 100 * time.Millisecond, Cap: 2 * time.Second},
		Breaker:   transport.BreakerConfig{FailureThreshold: 4, Cooldown: 2 * time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}

	sp, err := transport.OpenSpool(t.TempDir(), transport.SpoolOptions{})
	if err != nil {
		t.Fatal(err)
	}
	readings := chaosReadings(len(scenario.A(50, false).Sensors))
	for _, m := range readings {
		if _, err := sp.Append(m); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := client.Drain(context.Background(), sp); err != nil {
		t.Fatal(err)
	}
	if sp.Pending() != 0 {
		t.Fatalf("spool not drained: %d pending", sp.Pending())
	}
	if err := sp.Close(); err != nil {
		t.Fatal(err)
	}
	if st := client.Stats(); st.Delivered != uint64(len(readings)) {
		t.Fatalf("client delivered %d of %d", st.Delivered, len(readings))
	}
	snap, health = normalizedState(t, zs.defaultZone().Engine())

	// /readyz is clean again after the heal: the exit edge fired on the
	// first post-window append.
	if rec, code := nodetest.HTTPStatus(mux, http.MethodGet, "http://fusion/readyz", ""); code != http.StatusOK {
		t.Fatalf("post-heal /readyz = %d: %s", code, rec.Body.String())
	}
	// Close every zone cleanly so the WAL directory is a complete
	// crash-restart image (the injector is healed; the close succeeds).
	if err := zs.close(); err != nil {
		t.Fatal(err)
	}
	return snap, health, walDir, ing, dur, rt
}

// TestStorageChaosENOSPCBitIdentical is the headline disk-fault
// criterion: a 30-second disk-full window opens mid-delivery, every
// admission during it is refused with 507 + Retry-After, the agent
// rides it out on its spool — and once space frees, the final fused
// state is bit-identical to a run whose disk never failed, and a
// crash-restart on the WAL finds every acknowledged record.
func TestStorageChaosENOSPCBitIdentical(t *testing.T) {
	cleanSnap, cleanHealth, _, cleanIng, _, _ := runENOSPCDelivery(t, 0)
	chaosSnap, chaosHealth, chaosDir, chaosIng, dur, rt := runENOSPCDelivery(t, 30*time.Second)

	if !bytes.Equal(cleanSnap, chaosSnap) {
		t.Errorf("post-heal snapshot differs from undisturbed run:\nclean: %s\nchaos: %s", cleanSnap, chaosSnap)
	}
	if !bytes.Equal(cleanHealth, chaosHealth) {
		t.Errorf("sensor health differs from undisturbed run:\nclean: %s\nchaos: %s", cleanHealth, chaosHealth)
	}

	// The outage actually bit, and only the chaos run felt it.
	if got := chaosIng.Stats().Shed507; got == 0 {
		t.Error("no 507s shed — the ENOSPC window never fired")
	}
	if got := cleanIng.Stats().Shed507; got != 0 {
		t.Errorf("clean run shed %d 507s", got)
	}
	// Degraded mode engaged during the window and exited after it.
	dur.mu.Lock()
	degradedTotal, stillDegraded := dur.degradedTotal, dur.degraded
	dur.mu.Unlock()
	if degradedTotal == 0 {
		t.Error("zone never entered degraded mode")
	}
	if stillDegraded {
		t.Error("zone still degraded after the heal")
	}
	// Mid-outage, /readyz advertised the impairment with the header the
	// failure detector keys on.
	if rt.sawReadyzCode != http.StatusServiceUnavailable || rt.sawReadyzHeader != "degraded" {
		t.Errorf("mid-outage /readyz = %d header %q, want 503 %q", rt.sawReadyzCode, rt.sawReadyzHeader, "degraded")
	}

	// Crash-restart on the chaos WAL: replay + checkpoint recover every
	// acknowledged record (the journaled count of the bit-identical
	// snapshot), so the 507 window provably lost nothing durable.
	zs2, err := newZoneSet(zoneSetOptions{
		WalRoot: chaosDir, Fsync: wal.FsyncNever, CkptEvery: 50,
		Metrics: obs.NewRegistry(), Log: io.Discard, Build: testZoneBuild(t),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer zs2.close()
	if err := zs2.recoverZones(); err != nil {
		t.Fatal(err)
	}
	var want snapshotJSON
	if err := json.Unmarshal(chaosSnap, &want); err != nil {
		t.Fatal(err)
	}
	if got := zs2.defaultZone().Engine().Snapshot().Journaled; got != want.Journaled {
		t.Fatalf("recovered journaled = %d, want %d — acknowledged records lost", got, want.Journaled)
	}
}

// copyDirFiles snapshots a directory's regular files into dst — the
// observational equivalent of SIGKILL followed by inspecting the disk,
// without disturbing the live zone set.
func copyDirFiles(t *testing.T, src, dst string) {
	t.Helper()
	ents, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		blob, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), blob, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// flipByteInOldestSegment corrupts one byte in the middle of the
// oldest WAL segment file — cold corruption, after every write was
// validated and acknowledged.
func flipByteInOldestSegment(t *testing.T, dir string) string {
	t.Helper()
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.ndjson"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no WAL segments in %s: %v", dir, err)
	}
	sort.Strings(segs)
	blob, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	blob[len(blob)/2] ^= 0x20
	if err := os.WriteFile(segs[0], blob, 0o644); err != nil {
		t.Fatal(err)
	}
	return segs[0]
}

// TestScrubRepairsLocalCold is the standalone-node scrub criterion:
// a byte flips in a cold sealed segment, the scrubber's next tick
// detects it, quarantines the segment into corrupt/, re-anchors
// recovery with a checkpoint from the local engine — and a simulated
// crash-restart on the damaged directory recovers every acknowledged
// record.
func TestScrubRepairsLocalCold(t *testing.T) {
	walRoot := t.TempDir()
	reg := obs.NewRegistry()
	zs, err := newZoneSet(zoneSetOptions{
		// Checkpoint only at shutdown, 8-record segments: the stream
		// below leaves several sealed segments and no checkpoint, so
		// recovery would need the corrupted segment — the scrub repair is
		// what saves it.
		WalRoot: walRoot, Fsync: wal.FsyncNever, CkptEvery: 0, SegmentRecords: 8,
		Metrics: reg, Log: io.Discard, Build: testZoneBuild(t),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer zs.close()
	if err := zs.recoverZones(); err != nil {
		t.Fatal(err)
	}
	readings := chaosReadings(len(scenario.A(50, false).Sensors))
	for i := 0; i < len(readings); i += chaosBatch {
		end := i + chaosBatch
		if end > len(readings) {
			end = len(readings)
		}
		batch := make([]fusion.Meas, 0, chaosBatch)
		for _, m := range readings[i:end] {
			batch = append(batch, fusion.Meas{SensorID: m.SensorID, CPM: m.CPM, Step: m.Step, Seq: m.Seq})
		}
		if _, err := zs.manager.Submit(context.Background(), zone.DefaultZone, batch); err != nil {
			t.Fatal(err)
		}
	}
	d := zoneDurable(zs.defaultZone())
	d.j.mu.Lock()
	journaled := d.j.log.Offset()
	if err := d.j.log.Sync(); err != nil {
		t.Fatal(err)
	}
	d.j.mu.Unlock()
	if journaled < 24 {
		t.Fatalf("stream journaled only %d records — not enough sealed segments", journaled)
	}

	flipByteInOldestSegment(t, walRoot)
	scr, err := scrub.New(scrub.Options{Targets: zs.scrubTargets, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	scr.Tick(context.Background())

	// Detection + quarantine: the corrupt segment moved into corrupt/.
	parked, err := filepath.Glob(filepath.Join(walRoot, corruptDirName, "wal-*.ndjson"))
	if err != nil || len(parked) != 1 {
		t.Fatalf("quarantined segments = %v (err %v), want exactly 1", parked, err)
	}
	// Repair: a local checkpoint now anchors recovery past the hole.
	ck, ok, err := wal.LoadCheckpoint(walRoot)
	if err != nil || !ok {
		t.Fatalf("no repair checkpoint: ok=%v err=%v", ok, err)
	}
	if ck.Applied != journaled {
		t.Fatalf("repair checkpoint applied=%d, want %d (local engine head)", ck.Applied, journaled)
	}

	// Crash-restart on a copy of the damaged directory (no shutdown
	// flush): the repair checkpoint must carry recovery over the hole
	// with zero acknowledged-durable records lost.
	crashDir := t.TempDir()
	copyDirFiles(t, walRoot, crashDir)
	engine2, d2, err := openDurable(crashDir, nil, wal.FsyncNever, 0, 8, testZoneBuildJournalOnly(t), nil, io.Discard)
	if err != nil {
		t.Fatalf("recovery after scrub repair failed: %v", err)
	}
	defer d2.close()
	if !d2.recovery.CheckpointUsed || d2.recovery.CheckpointApplied != journaled {
		t.Fatalf("recovery did not use the repair checkpoint: %+v", d2.recovery)
	}
	if got := engine2.Snapshot().Journaled; got != journaled {
		t.Fatalf("recovered journaled = %d, want %d — acknowledged records lost", got, journaled)
	}
	// Scrub accounting went where it should.
	mux := newMux(serveConfig{Engine: zs.defaultZone().Engine(), Metrics: reg, Zones: zs})
	if v, ok := nodetest.ScrapeGauge(t, mux, `radloc_scrub_corruptions_total{kind="segment"}`); !ok || v != 1 {
		t.Errorf("radloc_scrub_corruptions_total{kind=segment} = %v (ok=%v), want 1", v, ok)
	}
	if v, ok := nodetest.ScrapeGauge(t, mux, `radloc_scrub_repairs_total{source="local"}`); !ok || v != 1 {
		t.Errorf("radloc_scrub_repairs_total{source=local} = %v (ok=%v), want 1", v, ok)
	}
}

// testZoneBuildJournalOnly is testZoneBuild's shape for direct
// openDurable calls (journal only, no per-zone metrics view).
func testZoneBuildJournalOnly(t *testing.T) func(fusion.Journal) (*fusion.Engine, error) {
	t.Helper()
	build := testZoneBuild(t)
	return func(j fusion.Journal) (*fusion.Engine, error) { return build(j, nil) }
}

// TestScrubRepairsFromReplica is the clustered scrub criterion: the
// primary's cold segment corrupts, and the repair checkpoint comes
// from the caught-up standby — an independent copy, immune to
// whatever ate the local disk — fetched over the same authenticated
// wire replication uses.
func TestScrubRepairsFromReplica(t *testing.T) {
	fab := nodetest.NewFabric()
	routes := cluster.Routes{Zones: map[string]cluster.Route{
		"default": {Primary: "http://a", Standby: "http://b"},
	}}
	a := newClusterTestNodeAt(t, fab, "a", &routes, t.TempDir())
	b := newClusterTestNode(t, fab, "b", &routes)

	sensors := len(scenario.A(50, false).Sensors)
	readings := chaosReadings(sensors)
	nodetest.SendRounds(t, nodetest.NewClient(t, fab, "http://a", "scrub-repl", ""), readings, sensors)
	aBack := a.backend(t, "default")
	nodetest.WaitUntil(t, "standby catch-up", func() bool {
		st, ok := b.status("default")
		return ok && st.CaughtUp && b.backend(t, "default").Offset() == aBack.Offset()
	})
	journaled := aBack.Offset()
	if journaled == 0 {
		t.Fatal("primary journaled nothing")
	}

	// Cold-corrupt the primary's oldest sealed segment, then scrub.
	walRoot := a.zs.walRoot
	flipByteInOldestSegment(t, walRoot)
	scr, err := scrub.New(scrub.Options{Targets: a.zs.scrubTargets, Metrics: a.reg})
	if err != nil {
		t.Fatal(err)
	}
	scr.Tick(context.Background())

	parked, err := filepath.Glob(filepath.Join(walRoot, corruptDirName, "wal-*.ndjson"))
	if err != nil || len(parked) != 1 {
		t.Fatalf("quarantined segments = %v (err %v), want exactly 1", parked, err)
	}
	if v, ok := nodetest.ScrapeGauge(t, a.mux, `radloc_scrub_repairs_total{source="replica"}`); !ok || v != 1 {
		t.Fatalf("radloc_scrub_repairs_total{source=replica} = %v (ok=%v), want 1 — repair did not come from the standby", v, ok)
	}
	ck, ok, err := wal.LoadCheckpoint(walRoot)
	if err != nil || !ok {
		t.Fatalf("no repair checkpoint: ok=%v err=%v", ok, err)
	}
	if ck.Applied < journaled {
		t.Fatalf("replica checkpoint applied=%d, want >= %d (standby was caught up)", ck.Applied, journaled)
	}

	// Crash-restart the primary's directory: the replica-sourced
	// checkpoint carries recovery over the hole, zero records lost.
	crashDir := t.TempDir()
	copyDirFiles(t, walRoot, crashDir)
	build := clusterTestBuild()
	engine2, d2, err := openDurable(crashDir, nil, wal.FsyncNever, 0, 16,
		func(j fusion.Journal) (*fusion.Engine, error) { return build(j, nil) }, nil, io.Discard)
	if err != nil {
		t.Fatalf("recovery after replica repair failed: %v", err)
	}
	defer d2.close()
	if !d2.recovery.CheckpointUsed {
		t.Fatalf("recovery ignored the replica checkpoint: %+v", d2.recovery)
	}
	if got := engine2.Snapshot().Journaled; got != journaled {
		t.Fatalf("recovered journaled = %d, want %d — acknowledged records lost", got, journaled)
	}
	// The recovered state is bit-identical to the standby's view of the
	// same journaled prefix — the copy the repair was seeded from.
	gotSnap, gotHealth := normalizedState(t, engine2)
	wantSnap, wantHealth := normalizedState(t, b.zs.defaultZone().Engine())
	if !bytes.Equal(gotSnap, wantSnap) {
		t.Errorf("recovered state differs from the replica seed:\nreplica:   %s\nrecovered: %s", wantSnap, gotSnap)
	}
	if !bytes.Equal(gotHealth, wantHealth) {
		t.Errorf("recovered health differs from the replica seed")
	}
}

// TestScrubSkipsDegradedZones pins the targets contract: a zone in
// degraded read-only mode is not scrubbed (its disk cannot accept the
// repair), and reappears once storage recovers.
func TestScrubSkipsDegradedZones(t *testing.T) {
	zs := testZoneSet(t, t.TempDir(), 0, 0)
	d := zoneDurable(zs.defaultZone())
	if got := len(zs.scrubTargets()); got != 1 {
		t.Fatalf("scrub targets = %d, want 1", got)
	}
	d.noteAppend(syscall.ENOSPC)
	if got := len(zs.scrubTargets()); got != 0 {
		t.Fatalf("degraded zone still a scrub target (%d)", got)
	}
	d.noteAppend(nil)
	if got := len(zs.scrubTargets()); got != 1 {
		t.Fatalf("recovered zone not re-targeted (%d)", got)
	}
}

// TestReadyzNamesDegradedZones pins the operator surface: /readyz
// goes 503 with the degraded header and the zone names in the body
// while any zone's storage is read-only.
func TestReadyzNamesDegradedZones(t *testing.T) {
	zs := testZoneSet(t, t.TempDir(), 0, 0)
	// Satisfy the refresh gate so only storage health drives /readyz.
	zs.defaultZone().Engine().Refresh()
	mux := newMux(serveConfig{Engine: zs.defaultZone().Engine(), Zones: zs,
		Durable: zoneDurable(zs.defaultZone())})
	if _, code := nodetest.HTTPStatus(mux, http.MethodGet, "http://x/readyz", ""); code != http.StatusOK {
		t.Fatalf("healthy /readyz = %d", code)
	}
	zoneDurable(zs.defaultZone()).noteAppend(syscall.EIO)
	rec, code := nodetest.HTTPStatus(mux, http.MethodGet, "http://x/readyz", "")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("degraded /readyz = %d, want 503", code)
	}
	if rec.Header().Get("X-Radloc-Storage") != "degraded" {
		t.Fatal("degraded /readyz missing X-Radloc-Storage header")
	}
	if !strings.Contains(rec.Body.String(), "default") {
		t.Fatalf("degraded /readyz does not name the zone: %s", rec.Body.String())
	}
	zoneDurable(zs.defaultZone()).noteAppend(nil)
	if _, code := nodetest.HTTPStatus(mux, http.MethodGet, "http://x/readyz", ""); code != http.StatusOK {
		t.Fatalf("recovered /readyz = %d", code)
	}
}
