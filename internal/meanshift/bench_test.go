package meanshift

import (
	"fmt"
	"testing"

	"radloc/internal/rng"
)

// benchData builds a realistic particle population: two tight clusters
// plus diffuse background, mirroring a converged filter.
func benchData(n int) (pts, ws, starts []float64) {
	s := rng.New(1, 1)
	for i := 0; i < n; i++ {
		var x, y, str float64
		switch i % 10 {
		case 0, 1, 2, 3:
			x, y, str = s.Normal(47, 2), s.Normal(71, 2), s.Normal(50, 5)
		case 4, 5, 6, 7:
			x, y, str = s.Normal(81, 2), s.Normal(42, 2), s.Normal(50, 5)
		default:
			x, y, str = s.Uniform(0, 100), s.Uniform(0, 100), s.Uniform(0, 200)
		}
		pts = append(pts, x, y, str)
		ws = append(ws, 1)
	}
	for i := 0; i < 192; i++ {
		j := s.IntN(n)
		starts = append(starts, pts[3*j], pts[3*j+1], pts[3*j+2])
	}
	return pts, ws, starts
}

func BenchmarkFindModes(b *testing.B) {
	for _, n := range []int{2000, 15000} {
		pts, ws, starts := benchData(n)
		for _, workers := range []int{1, 4} {
			b.Run(fmt.Sprintf("n%d-w%d", n, workers), func(b *testing.B) {
				cfg := Config{Bandwidth: []float64{4, 4, 30}, Workers: workers}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := FindModes(cfg, pts, ws, starts); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

func BenchmarkAssignMass(b *testing.B) {
	pts, ws, starts := benchData(15000)
	cfg := Config{Bandwidth: []float64{4, 4, 30}}
	modes, err := FindModes(cfg, pts, ws, starts)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := AssignMass(cfg, modes, pts, ws, 3); err != nil {
			b.Fatal(err)
		}
	}
}
