package meanshift

import (
	"errors"
	"math"
	"testing"

	"radloc/internal/rng"
)

// cluster3 appends n points of a Gaussian cluster at (cx, cy, cs) to
// the flat arrays.
func cluster3(s *rng.Stream, pts, ws []float64, n int, cx, cy, cs, spread, w float64) ([]float64, []float64) {
	for i := 0; i < n; i++ {
		pts = append(pts,
			s.Normal(cx, spread),
			s.Normal(cy, spread),
			s.Normal(cs, spread*3),
		)
		ws = append(ws, w)
	}
	return pts, ws
}

func defaultCfg() Config {
	return Config{Bandwidth: []float64{4, 4, 30}}
}

func TestFindModesTwoClusters(t *testing.T) {
	s := rng.New(1, 1)
	var pts, ws []float64
	pts, ws = cluster3(s, pts, ws, 400, 20, 20, 50, 2, 1)
	pts, ws = cluster3(s, pts, ws, 400, 80, 70, 120, 2, 1)

	// Starts on a coarse grid.
	var starts []float64
	for x := 10.0; x <= 90; x += 20 {
		for y := 10.0; y <= 90; y += 20 {
			starts = append(starts, x, y, 80)
		}
	}
	modes, err := FindModes(defaultCfg(), pts, ws, starts)
	if err != nil {
		t.Fatal(err)
	}
	if len(modes) != 2 {
		t.Fatalf("found %d modes, want 2: %+v", len(modes), modes)
	}
	// Modes are density-sorted but the clusters are symmetric; match by
	// distance.
	for _, want := range [][2]float64{{20, 20}, {80, 70}} {
		found := false
		for _, m := range modes {
			if math.Hypot(m.Point[0]-want[0], m.Point[1]-want[1]) < 3 {
				found = true
			}
		}
		if !found {
			t.Errorf("no mode near (%v,%v): %+v", want[0], want[1], modes)
		}
	}
	// Strength coordinate recovered too.
	for _, m := range modes {
		if m.Point[0] < 50 && math.Abs(m.Point[2]-50) > 15 {
			t.Errorf("cluster-1 strength mode = %v, want ≈50", m.Point[2])
		}
		if m.Point[0] > 50 && math.Abs(m.Point[2]-120) > 15 {
			t.Errorf("cluster-2 strength mode = %v, want ≈120", m.Point[2])
		}
	}
}

func TestFindModesRespectsWeights(t *testing.T) {
	s := rng.New(2, 2)
	var pts, ws []float64
	// Heavy cluster and a zero-weight cluster: the latter must not
	// produce a mode.
	pts, ws = cluster3(s, pts, ws, 300, 25, 25, 40, 2, 1)
	pts, ws = cluster3(s, pts, ws, 300, 75, 75, 40, 2, 0)

	starts := []float64{25, 25, 40, 75, 75, 40}
	modes, err := FindModes(defaultCfg(), pts, ws, starts)
	if err != nil {
		t.Fatal(err)
	}
	if len(modes) != 1 {
		t.Fatalf("modes = %+v, want exactly 1", modes)
	}
	if math.Hypot(modes[0].Point[0]-25, modes[0].Point[1]-25) > 3 {
		t.Errorf("mode at (%v,%v), want near (25,25)", modes[0].Point[0], modes[0].Point[1])
	}
}

func TestFindModesMergesDuplicateStarts(t *testing.T) {
	s := rng.New(3, 3)
	var pts, ws []float64
	pts, ws = cluster3(s, pts, ws, 500, 50, 50, 100, 2, 1)
	var starts []float64
	// All starts within the kernel cutoff of the cluster so none is
	// discarded for lack of support.
	for i := 0; i < 32; i++ {
		starts = append(starts, s.Uniform(42, 58), s.Uniform(42, 58), s.Uniform(70, 130))
	}
	modes, err := FindModes(defaultCfg(), pts, ws, starts)
	if err != nil {
		t.Fatal(err)
	}
	if len(modes) != 1 {
		t.Fatalf("modes = %d, want 1", len(modes))
	}
	if modes[0].Starts != 32 {
		t.Errorf("merged starts = %d, want 32", modes[0].Starts)
	}
}

func TestFindModesEmptyInputs(t *testing.T) {
	cfg := defaultCfg()
	if modes, err := FindModes(cfg, nil, nil, []float64{1, 1, 1}); err != nil || modes != nil {
		t.Errorf("no points: %v, %v", modes, err)
	}
	if modes, err := FindModes(cfg, []float64{1, 1, 1}, []float64{1}, nil); err != nil || modes != nil {
		t.Errorf("no starts: %v, %v", modes, err)
	}
}

func TestFindModesErrors(t *testing.T) {
	if _, err := FindModes(Config{Bandwidth: []float64{4}}, nil, nil, nil); err == nil {
		t.Error("1-D bandwidth accepted")
	}
	if _, err := FindModes(Config{Bandwidth: []float64{4, -1}}, nil, nil, nil); err == nil {
		t.Error("negative bandwidth accepted")
	}
	cfg := defaultCfg()
	if _, err := FindModes(cfg, []float64{1, 2}, []float64{1}, nil); !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("ragged points: %v", err)
	}
	if _, err := FindModes(cfg, []float64{1, 2, 3}, []float64{1, 1}, nil); !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("weight count mismatch: %v", err)
	}
	if _, err := FindModes(cfg, []float64{1, 2, 3}, []float64{1}, []float64{1}); !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("ragged starts: %v", err)
	}
}

func TestStartInDesertIsDiscarded(t *testing.T) {
	s := rng.New(4, 4)
	var pts, ws []float64
	pts, ws = cluster3(s, pts, ws, 200, 10, 10, 50, 1.5, 1)
	// One start near the cluster, one far outside any kernel support.
	starts := []float64{12, 12, 60, 900, 900, 50}
	modes, err := FindModes(defaultCfg(), pts, ws, starts)
	if err != nil {
		t.Fatal(err)
	}
	if len(modes) != 1 {
		t.Fatalf("modes = %+v, want 1 (desert start discarded)", modes)
	}
}

func TestAssignMass(t *testing.T) {
	s := rng.New(5, 5)
	var pts, ws []float64
	pts, ws = cluster3(s, pts, ws, 300, 20, 20, 50, 2, 2)  // mass 600
	pts, ws = cluster3(s, pts, ws, 100, 80, 80, 100, 2, 1) // mass 100
	pts = append(pts, 500, 500, 50)                        // outlier
	ws = append(ws, 5)

	cfg := defaultCfg()
	starts := []float64{20, 20, 50, 80, 80, 100}
	modes, err := FindModes(cfg, pts, ws, starts)
	if err != nil {
		t.Fatal(err)
	}
	if len(modes) != 2 {
		t.Fatalf("modes = %d, want 2", len(modes))
	}
	mass, err := AssignMass(cfg, modes, pts, ws, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(mass) != 3 {
		t.Fatalf("mass slots = %d, want 3", len(mass))
	}
	var big, small float64
	if modes[0].Point[0] < 50 {
		big, small = mass[0], mass[1]
	} else {
		big, small = mass[1], mass[0]
	}
	if big < 550 || big > 610 {
		t.Errorf("big-cluster mass = %v, want ≈600", big)
	}
	if small < 80 || small > 110 {
		t.Errorf("small-cluster mass = %v, want ≈100", small)
	}
	if mass[2] < 5 {
		t.Errorf("unassigned mass = %v, want ≥ 5 (the outlier)", mass[2])
	}
}

func TestAssignMassErrors(t *testing.T) {
	cfg := defaultCfg()
	if _, err := AssignMass(cfg, nil, []float64{1, 2}, []float64{1}, 3); !errors.Is(err, ErrDimensionMismatch) {
		t.Errorf("ragged points: %v", err)
	}
	if _, err := AssignMass(Config{Bandwidth: []float64{0, 1}}, nil, nil, nil, 3); err == nil {
		t.Error("invalid bandwidth accepted")
	}
	// No modes: everything unassigned.
	mass, err := AssignMass(cfg, nil, []float64{1, 2, 3}, []float64{7}, 3)
	if err != nil || len(mass) != 1 || mass[0] != 7 {
		t.Errorf("no-mode assignment = %v, %v", mass, err)
	}
}

func TestWorkerCountsAgree(t *testing.T) {
	s := rng.New(6, 6)
	var pts, ws []float64
	pts, ws = cluster3(s, pts, ws, 300, 30, 40, 60, 2, 1)
	pts, ws = cluster3(s, pts, ws, 300, 70, 60, 140, 2, 1)
	var starts []float64
	for i := 0; i < 24; i++ {
		starts = append(starts, s.Uniform(0, 100), s.Uniform(0, 100), s.Uniform(0, 200))
	}
	cfg1 := defaultCfg()
	cfg1.Workers = 1
	cfgN := defaultCfg()
	cfgN.Workers = 8
	m1, err := FindModes(cfg1, pts, ws, starts)
	if err != nil {
		t.Fatal(err)
	}
	mN, err := FindModes(cfgN, pts, ws, starts)
	if err != nil {
		t.Fatal(err)
	}
	if len(m1) != len(mN) {
		t.Fatalf("worker counts disagree: %d vs %d modes", len(m1), len(mN))
	}
	for i := range m1 {
		for k := range m1[i].Point {
			if math.Abs(m1[i].Point[k]-mN[i].Point[k]) > 1e-6 {
				t.Fatalf("mode %d dim %d: %v vs %v", i, k, m1[i].Point[k], mN[i].Point[k])
			}
		}
	}
}

// TestExpNegHalfErrorBound sweeps the interpolated kernel against
// math.Exp over the table's whole domain. The linear-interpolation
// error bound for step h is h²/8·max|f''| = h²/32 ≈ 4.8e-7 relative —
// three orders of magnitude below the kernel's own 4σ truncation
// (e^-8 ≈ 3.4e-4), so the table can never reorder modes the exact
// kernel would separate.
func TestExpNegHalfErrorBound(t *testing.T) {
	s := rng.New(11, 3)
	worst := 0.0
	for i := 0; i < 200000; i++ {
		d2 := s.Uniform(0, expTableMax)
		got := expNegHalf(d2, false)
		want := math.Exp(-0.5 * d2)
		rel := math.Abs(got-want) / want
		if rel > worst {
			worst = rel
		}
	}
	if worst > 1e-6 {
		t.Errorf("interpolated kernel relative error %v, want < 1e-6", worst)
	}
	// Beyond the table and under ExactKernel the fallback is exact.
	for _, d2 := range []float64{expTableMax, expTableMax + 1, 100} {
		if got, want := expNegHalf(d2, false), math.Exp(-0.5*d2); got != want {
			t.Errorf("expNegHalf(%v) = %v beyond table, want exact %v", d2, got, want)
		}
	}
	if got, want := expNegHalf(3.7, true), math.Exp(-0.5*3.7); got != want {
		t.Errorf("exact-mode expNegHalf(3.7) = %v, want %v", got, want)
	}
}

// TestSearcherReuseMatchesFresh drives one Searcher through several
// different datasets and checks each call returns exactly what a
// single-use Searcher computes — the scratch reuse (grids, gather
// buffers, dedup arrays) must never leak state across calls.
func TestSearcherReuseMatchesFresh(t *testing.T) {
	s := rng.New(12, 9)
	reused, err := NewSearcher(defaultCfg())
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 5; round++ {
		var pts, ws []float64
		pts, ws = cluster3(s, pts, ws, 100+40*round, 20+10*float64(round), 50, 80, 2, 1)
		pts, ws = cluster3(s, pts, ws, 150, 80, 30, 160, 3, 0.5)
		var starts []float64
		for i := 0; i < 16; i++ {
			starts = append(starts, s.Uniform(0, 100), s.Uniform(0, 100), s.Uniform(0, 250))
		}
		got, err := reused.FindModes(pts, ws, starts)
		if err != nil {
			t.Fatal(err)
		}
		want, err := FindModes(defaultCfg(), pts, ws, starts)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("round %d: reused searcher found %d modes, fresh %d", round, len(got), len(want))
		}
		for i := range got {
			if got[i].Density != want[i].Density || got[i].Starts != want[i].Starts {
				t.Fatalf("round %d mode %d: (density %v, starts %d) vs fresh (%v, %d)",
					round, i, got[i].Density, got[i].Starts, want[i].Density, want[i].Starts)
			}
			for k := range got[i].Point {
				if got[i].Point[k] != want[i].Point[k] {
					t.Fatalf("round %d mode %d dim %d: %v vs %v",
						round, i, k, got[i].Point[k], want[i].Point[k])
				}
			}
		}
	}
}

// TestExactKernelAgreesWithTable checks the ExactKernel escape hatch
// lands on the same modes (within the interpolation error's reach) as
// the default table-driven kernel.
func TestExactKernelAgreesWithTable(t *testing.T) {
	s := rng.New(13, 5)
	var pts, ws []float64
	pts, ws = cluster3(s, pts, ws, 250, 35, 45, 70, 2, 1)
	pts, ws = cluster3(s, pts, ws, 250, 65, 55, 150, 2, 1)
	var starts []float64
	for i := 0; i < 20; i++ {
		starts = append(starts, s.Uniform(0, 100), s.Uniform(0, 100), s.Uniform(0, 220))
	}
	table, err := FindModes(defaultCfg(), pts, ws, starts)
	if err != nil {
		t.Fatal(err)
	}
	exactCfg := defaultCfg()
	exactCfg.ExactKernel = true
	exact, err := FindModes(exactCfg, pts, ws, starts)
	if err != nil {
		t.Fatal(err)
	}
	if len(table) != len(exact) {
		t.Fatalf("table kernel found %d modes, exact %d", len(table), len(exact))
	}
	for i := range table {
		for k := range table[i].Point {
			if math.Abs(table[i].Point[k]-exact[i].Point[k]) > 1e-3 {
				t.Fatalf("mode %d dim %d: table %v vs exact %v",
					i, k, table[i].Point[k], exact[i].Point[k])
			}
		}
	}
}
