// Package meanshift implements the weighted kernel-density mode seeking
// of Comaniciu & Meer that the paper uses to turn the particle
// population into source estimates (Section V-D, Eq. 6–7).
//
// Points live in R^d with a diagonal Gaussian bandwidth; the search
// runs in "scaled space" where every coordinate is divided by its
// bandwidth, making the kernel isotropic. Starts are iterated with
//
//	x_{i+1} = Σ_j p_j w_j K(x_i − p_j) / Σ_j w_j K(x_i − p_j)
//
// until convergence; converged points within MergeRadius of each other
// are merged into one mode. The paper reports that mean-shift dominates
// its runtime and parallelizes well — FindModes distributes starts
// across Workers goroutines, and a uniform grid over the first two
// (spatial) dimensions prunes kernel evaluations to a CutoffSigmas
// neighbourhood.
package meanshift

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"radloc/internal/geometry"
	"radloc/internal/spatial"
)

// Config controls the mode search. Zero values of MaxIter, Tol,
// MergeRadius, CutoffSigmas and Workers select the documented defaults.
type Config struct {
	// Bandwidth is the per-dimension kernel bandwidth h_k (> 0). Its
	// length fixes the dimensionality d ≥ 2; the first two dimensions
	// must be the spatial ones (they drive neighbour pruning).
	Bandwidth []float64
	// MaxIter bounds the iterations per start (default 100).
	MaxIter int
	// Tol is the scaled-space movement below which a start has
	// converged (default 1e-3).
	Tol float64
	// MergeRadius is the scaled-space distance within which two
	// converged points are one mode (default 1.0).
	MergeRadius float64
	// CutoffSigmas is the scaled-space radius beyond which kernel
	// contributions are ignored (default 4).
	CutoffSigmas float64
	// Workers is the number of goroutines iterating starts (default
	// runtime.GOMAXPROCS(0)).
	Workers int
}

func (c Config) withDefaults() Config {
	if c.MaxIter <= 0 {
		c.MaxIter = 100
	}
	if c.Tol <= 0 {
		c.Tol = 1e-3
	}
	if c.MergeRadius <= 0 {
		c.MergeRadius = 1.0
	}
	if c.CutoffSigmas <= 0 {
		c.CutoffSigmas = 4
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	return c
}

func (c Config) validate() error {
	if len(c.Bandwidth) < 2 {
		return fmt.Errorf("meanshift: need ≥ 2 dimensions, got %d", len(c.Bandwidth))
	}
	for k, h := range c.Bandwidth {
		if h <= 0 || math.IsNaN(h) || math.IsInf(h, 0) {
			return fmt.Errorf("meanshift: bandwidth[%d] = %v", k, h)
		}
	}
	return nil
}

// Mode is a local maximum of the weighted kernel density.
type Mode struct {
	// Point is the mode location in original (unscaled) coordinates.
	Point []float64
	// Density is the unnormalized kernel density Σ w_j K at the mode.
	Density float64
	// Starts is the number of start points that converged to this mode.
	Starts int
}

// ErrDimensionMismatch is returned when points, weights, or starts do
// not agree with the configured dimensionality.
var ErrDimensionMismatch = errors.New("meanshift: dimension mismatch")

// FindModes locates the density modes reachable from the given starts.
//
// points is a flat array of n·d coordinates (point j at
// points[j*d:(j+1)*d]); weights holds the n non-negative point weights;
// starts is a flat array of m·d start coordinates. The returned modes
// are sorted by descending density.
func FindModes(cfg Config, points []float64, weights []float64, starts []float64) ([]Mode, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	d := len(cfg.Bandwidth)
	if len(points)%d != 0 || len(starts)%d != 0 {
		return nil, fmt.Errorf("%w: %d coords, %d starts, dim %d", ErrDimensionMismatch, len(points), len(starts), d)
	}
	n := len(points) / d
	if len(weights) != n {
		return nil, fmt.Errorf("%w: %d weights for %d points", ErrDimensionMismatch, len(weights), n)
	}
	if n == 0 || len(starts) == 0 {
		return nil, nil
	}

	// Scale all coordinates by the bandwidth once.
	scaled := make([]float64, len(points))
	for j := 0; j < n; j++ {
		for k := 0; k < d; k++ {
			scaled[j*d+k] = points[j*d+k] / cfg.Bandwidth[k]
		}
	}
	grid := buildGrid(scaled, d, cfg.CutoffSigmas)

	m := len(starts) / d
	results := make([][]float64, m)
	densities := make([]float64, m)

	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			buf := &searchBuf{ids: make([]int, 0, 256)}
			for i := range next {
				x := make([]float64, d)
				for k := 0; k < d; k++ {
					x[k] = starts[i*d+k] / cfg.Bandwidth[k]
				}
				dens, ok := climb(cfg, scaled, weights, grid, x, buf)
				if ok {
					results[i] = x
					densities[i] = dens
				}
			}
		}()
	}
	for i := 0; i < m; i++ {
		next <- i
	}
	close(next)
	wg.Wait()

	modes := mergeModes(cfg, results, densities)
	// Unscale back to original coordinates.
	for i := range modes {
		for k := 0; k < d; k++ {
			modes[i].Point[k] *= cfg.Bandwidth[k]
		}
	}
	return modes, nil
}

type searchBuf struct {
	ids []int
}

// climb runs the mean-shift iteration in scaled space, mutating x in
// place. It reports the final kernel density and whether the start ever
// saw any support.
func climb(cfg Config, scaled, weights []float64, grid *spatial.Grid, x []float64, buf *searchBuf) (float64, bool) {
	d := len(cfg.Bandwidth)
	num := make([]float64, d)
	var dens float64
	for iter := 0; iter < cfg.MaxIter; iter++ {
		for k := range num {
			num[k] = 0
		}
		var denom float64
		buf.ids = grid.WithinRadius(geometry.V(x[0], x[1]), cfg.CutoffSigmas, buf.ids[:0])
		for _, j := range buf.ids {
			w := weights[j]
			if w <= 0 {
				continue
			}
			var d2 float64
			base := j * d
			for k := 0; k < d; k++ {
				diff := x[k] - scaled[base+k]
				d2 += diff * diff
			}
			kv := w * math.Exp(-0.5*d2)
			denom += kv
			for k := 0; k < d; k++ {
				num[k] += kv * scaled[base+k]
			}
		}
		if denom <= 0 {
			return 0, false
		}
		var move float64
		for k := 0; k < d; k++ {
			nx := num[k] / denom
			diff := nx - x[k]
			move += diff * diff
			x[k] = nx
		}
		dens = denom
		if math.Sqrt(move) < cfg.Tol {
			return dens, true
		}
	}
	return dens, true
}

// mergeModes greedily merges converged points within MergeRadius,
// keeping the densest representative.
func mergeModes(cfg Config, results [][]float64, densities []float64) []Mode {
	d := len(cfg.Bandwidth)
	order := make([]int, 0, len(results))
	for i, r := range results {
		if r != nil {
			order = append(order, i)
		}
	}
	sort.Slice(order, func(a, b int) bool { return densities[order[a]] > densities[order[b]] })

	var modes []Mode
	r2 := cfg.MergeRadius * cfg.MergeRadius
	for _, i := range order {
		pt := results[i]
		merged := false
		for mi := range modes {
			var dist2 float64
			for k := 0; k < d; k++ {
				diff := modes[mi].Point[k] - pt[k]
				dist2 += diff * diff
			}
			if dist2 <= r2 {
				modes[mi].Starts++
				merged = true
				break
			}
		}
		if !merged {
			cp := make([]float64, d)
			copy(cp, pt)
			modes = append(modes, Mode{Point: cp, Density: densities[i], Starts: 1})
		}
	}
	return modes
}

// AssignMass distributes the points' weights over the modes: each point
// is credited to its nearest mode when their scaled-space distance is
// within cutoff bandwidths, otherwise it stays unassigned. The return
// value has one total per mode (same order) followed by the unassigned
// remainder at index len(modes).
func AssignMass(cfg Config, modes []Mode, points []float64, weights []float64, cutoff float64) ([]float64, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	d := len(cfg.Bandwidth)
	if len(points)%d != 0 {
		return nil, ErrDimensionMismatch
	}
	n := len(points) / d
	if len(weights) != n {
		return nil, ErrDimensionMismatch
	}
	if cutoff <= 0 {
		cutoff = cfg.withDefaults().CutoffSigmas
	}
	out := make([]float64, len(modes)+1)
	c2 := cutoff * cutoff
	for j := 0; j < n; j++ {
		best := -1
		bestD2 := math.Inf(1)
		for mi := range modes {
			var d2 float64
			for k := 0; k < d; k++ {
				diff := (points[j*d+k] - modes[mi].Point[k]) / cfg.Bandwidth[k]
				d2 += diff * diff
			}
			if d2 < bestD2 {
				bestD2 = d2
				best = mi
			}
		}
		if best >= 0 && bestD2 <= c2 {
			out[best] += weights[j]
		} else {
			out[len(modes)] += weights[j]
		}
	}
	return out, nil
}

// buildGrid indexes the first two scaled dimensions for neighbour
// pruning.
func buildGrid(scaled []float64, d int, cutoff float64) *spatial.Grid {
	n := len(scaled) / d
	pts := make([]geometry.Vec, n)
	lo := geometry.V(math.Inf(1), math.Inf(1))
	hi := geometry.V(math.Inf(-1), math.Inf(-1))
	for j := 0; j < n; j++ {
		p := geometry.V(scaled[j*d], scaled[j*d+1])
		pts[j] = p
		lo.X = math.Min(lo.X, p.X)
		lo.Y = math.Min(lo.Y, p.Y)
		hi.X = math.Max(hi.X, p.X)
		hi.Y = math.Max(hi.Y, p.Y)
	}
	g := spatial.NewGrid(geometry.NewRect(lo, hi), cutoff)
	g.Rebuild(pts)
	return g
}
