// Package meanshift implements the weighted kernel-density mode seeking
// of Comaniciu & Meer that the paper uses to turn the particle
// population into source estimates (Section V-D, Eq. 6–7).
//
// Points live in R^d with a diagonal Gaussian bandwidth; the search
// runs in "scaled space" where every coordinate is divided by its
// bandwidth, making the kernel isotropic. Starts are iterated with
//
//	x_{i+1} = Σ_j p_j w_j K(x_i − p_j) / Σ_j w_j K(x_i − p_j)
//
// until convergence; converged points within MergeRadius of each other
// are merged into one mode. Points beyond CutoffSigmas in scaled
// spatial (first-two-dimension) distance are ignored — the truncation
// discards at most exp(−CutoffSigmas²/2) (≈ 3·10⁻⁴ at the default 4)
// of any point's relative spatial contribution.
//
// The paper reports that mean-shift dominates its runtime and
// parallelizes well. A Searcher distributes starts across Workers
// goroutines and owns reusable scratch (the scaled copy, the spatial
// prune grid, gathered neighbourhoods), so repeated searches over
// populations of similar size allocate almost nothing; see DESIGN.md
// §11 for the performance model. FindModes remains as a convenience
// wrapper for one-shot searches.
package meanshift

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"radloc/internal/geometry"
	"radloc/internal/spatial"
)

// Config controls the mode search. Zero values of MaxIter, Tol,
// MergeRadius, CutoffSigmas and Workers select the documented defaults.
type Config struct {
	// Bandwidth is the per-dimension kernel bandwidth h_k (> 0). Its
	// length fixes the dimensionality d ≥ 2; the first two dimensions
	// must be the spatial ones (they drive neighbour pruning).
	Bandwidth []float64
	// MaxIter bounds the iterations per start (default 100).
	MaxIter int
	// Tol is the scaled-space movement below which a start has
	// converged (default 1e-3).
	Tol float64
	// MergeRadius is the scaled-space distance within which two
	// converged points are one mode (default 1.0).
	MergeRadius float64
	// CutoffSigmas is the scaled-space radius beyond which kernel
	// contributions are ignored (default 4).
	CutoffSigmas float64
	// Workers is the number of goroutines iterating starts (default
	// runtime.GOMAXPROCS(0)). The worker count never changes the
	// result: every start's climb is independent and results merge in
	// a fixed order.
	Workers int
	// ExactKernel forces math.Exp for the Gaussian kernel instead of
	// the default table-interpolated exponential. The table's relative
	// error (≈ 5·10⁻⁷) sits three orders of magnitude below the
	// CutoffSigmas truncation error, so this exists for verification,
	// not accuracy.
	ExactKernel bool
}

func (c Config) withDefaults() Config {
	if c.MaxIter <= 0 {
		c.MaxIter = 100
	}
	if c.Tol <= 0 {
		c.Tol = 1e-3
	}
	if c.MergeRadius <= 0 {
		c.MergeRadius = 1.0
	}
	if c.CutoffSigmas <= 0 {
		c.CutoffSigmas = 4
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	return c
}

func (c Config) validate() error {
	if len(c.Bandwidth) < 2 {
		return fmt.Errorf("meanshift: need ≥ 2 dimensions, got %d", len(c.Bandwidth))
	}
	for k, h := range c.Bandwidth {
		if h <= 0 || math.IsNaN(h) || math.IsInf(h, 0) {
			return fmt.Errorf("meanshift: bandwidth[%d] = %v", k, h)
		}
	}
	return nil
}

// Mode is a local maximum of the weighted kernel density.
type Mode struct {
	// Point is the mode location in original (unscaled) coordinates.
	Point []float64
	// Density is the unnormalized kernel density Σ w_j K at the mode.
	Density float64
	// Starts is the number of start points that converged to this mode.
	Starts int
}

// ErrDimensionMismatch is returned when points, weights, or starts do
// not agree with the configured dimensionality.
var ErrDimensionMismatch = errors.New("meanshift: dimension mismatch")

// gatherSlack is the scaled-space distance a climbing point may drift
// from its last neighbourhood query before the neighbourhood is
// re-gathered. Gathering queries the grid with radius CutoffSigmas +
// gatherSlack, so every point within the cutoff of the drifted position
// is still present; the kernel loop's own cutoff test discards the
// ring. Mean-shift steps shrink geometrically near a mode, so most
// iterations reuse the gathered neighbourhood instead of re-walking
// grid cells. 2σ of slack roughly doubles the gathered area at the
// default cutoff but lets a typical climb gather once or twice total.
const gatherSlack = 2.0

// Searcher runs repeated mode searches with reusable scratch: the
// bandwidth-scaled point copy, the spatial prune grid, per-worker
// gathered neighbourhoods, and the start/result staging buffers all
// persist across calls. A Searcher is not safe for concurrent use; one
// FindModes call parallelizes internally across Config.Workers
// goroutines.
type Searcher struct {
	cfg Config
	d   int

	// Per-call views of the caller's data (valid during one search).
	weights []float64

	scaled []float64      // bandwidth-scaled point coordinates, n×d
	pts    []geometry.Vec // scaled 2-D positions for the prune grid
	grid   *spatial.Grid

	startScaled []float64 // scaled start coordinates, m×d
	ord         []int     // sort scratch for dedup and merge ordering
	uniq        []float64 // deduplicated scaled starts, u×d
	mult        []int     // original starts represented by each unique start

	resBuf []float64 // climb results, u×d (climbed in place)
	resOK  []bool
	dens   []float64
	invBW  []float64 // reciprocal bandwidths for AssignMass

	bufs []*climbBuf // one per worker slot
}

// climbBuf is one worker's gathered neighbourhood: the IDs the grid
// returned, their positive weights, and their coordinates copied into
// dense arrays so the kernel loop streams contiguously. The d == 3
// search space gathers one array per coordinate — the spatial cutoff
// test then reads only the gx/gy streams, and the strength stream is
// touched only for points that pass; higher dimensions use the
// interleaved coords array.
type climbBuf struct {
	ids        []int
	w          []float64
	gx, gy, gz []float64
	coords     []float64
	num        []float64
}

// NewSearcher validates and defaults cfg and returns a Searcher ready
// for repeated FindModes/AssignMass calls.
func NewSearcher(cfg Config) (*Searcher, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	return &Searcher{
		cfg:  cfg,
		d:    len(cfg.Bandwidth),
		grid: spatial.NewGrid(geometry.NewRect(geometry.V(0, 0), geometry.V(1, 1)), cfg.CutoffSigmas),
	}, nil
}

// FindModes locates the density modes reachable from the given starts.
//
// points is a flat array of n·d coordinates (point j at
// points[j*d:(j+1)*d]); weights holds the n non-negative point weights;
// starts is a flat array of m·d start coordinates. The returned modes
// are sorted by descending density. Bitwise-identical starts are
// climbed once and their multiplicity restored in Mode.Starts.
func (s *Searcher) FindModes(points, weights, starts []float64) ([]Mode, error) {
	d := s.d
	if len(points)%d != 0 || len(starts)%d != 0 {
		return nil, fmt.Errorf("%w: %d coords, %d starts, dim %d", ErrDimensionMismatch, len(points), len(starts), d)
	}
	n := len(points) / d
	if len(weights) != n {
		return nil, fmt.Errorf("%w: %d weights for %d points", ErrDimensionMismatch, len(weights), n)
	}
	if n == 0 || len(starts) == 0 {
		return nil, nil
	}
	s.weights = weights
	defer func() { s.weights = nil }()

	s.prepare(points, n)
	u := s.dedupStarts(starts)
	s.runClimbs(u)
	modes := s.mergeModes(u)
	for i := range modes {
		for k := 0; k < d; k++ {
			modes[i].Point[k] *= s.cfg.Bandwidth[k]
		}
	}
	return modes, nil
}

// prepare scales the points into the reusable buffers and rebuilds the
// 2-D prune grid over them.
func (s *Searcher) prepare(points []float64, n int) {
	d := s.d
	s.scaled = s.scaled[:0]
	if cap(s.scaled) < len(points) {
		s.scaled = make([]float64, 0, len(points))
	}
	if cap(s.pts) < n {
		s.pts = make([]geometry.Vec, 0, n)
	}
	s.pts = s.pts[:n]
	lo := geometry.V(math.Inf(1), math.Inf(1))
	hi := geometry.V(math.Inf(-1), math.Inf(-1))
	for j := 0; j < n; j++ {
		for k := 0; k < d; k++ {
			s.scaled = append(s.scaled, points[j*d+k]/s.cfg.Bandwidth[k])
		}
		p := geometry.V(s.scaled[j*d], s.scaled[j*d+1])
		s.pts[j] = p
		lo.X = math.Min(lo.X, p.X)
		lo.Y = math.Min(lo.Y, p.Y)
		hi.X = math.Max(hi.X, p.X)
		hi.Y = math.Max(hi.Y, p.Y)
	}
	s.grid.Reset(geometry.NewRect(lo, hi), s.cfg.CutoffSigmas)
	s.grid.Rebuild(s.pts)
}

// dedupStarts scales the starts, collapses bitwise-equal ones, and
// returns the number of unique starts staged for climbing. Duplicate
// starts are common — systematic sampling over a converged population
// picks heavy particles many times — and climbing a duplicate can only
// reproduce the first copy's trajectory.
func (s *Searcher) dedupStarts(starts []float64) int {
	d := s.d
	m := len(starts) / d
	s.startScaled = s.startScaled[:0]
	if cap(s.startScaled) < len(starts) {
		s.startScaled = make([]float64, 0, len(starts))
	}
	for i := 0; i < m; i++ {
		for k := 0; k < d; k++ {
			s.startScaled = append(s.startScaled, starts[i*d+k]/s.cfg.Bandwidth[k])
		}
	}
	s.ord = s.ord[:0]
	for i := 0; i < m; i++ {
		s.ord = append(s.ord, i)
	}
	sort.Slice(s.ord, func(a, b int) bool {
		pa, pb := s.ord[a]*d, s.ord[b]*d
		for k := 0; k < d; k++ {
			if s.startScaled[pa+k] != s.startScaled[pb+k] {
				return s.startScaled[pa+k] < s.startScaled[pb+k]
			}
		}
		return false
	})
	s.uniq = s.uniq[:0]
	s.mult = s.mult[:0]
	for idx, i := range s.ord {
		base := i * d
		if idx > 0 && equalCoords(s.startScaled[base:base+d], s.uniq[len(s.uniq)-d:]) {
			s.mult[len(s.mult)-1]++
			continue
		}
		s.uniq = append(s.uniq, s.startScaled[base:base+d]...)
		s.mult = append(s.mult, 1)
	}
	return len(s.mult)
}

func equalCoords(a, b []float64) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// runClimbs climbs every unique start, inline for one worker and over a
// goroutine pool otherwise. Each climb writes only its own result slot,
// so scheduling cannot influence the outcome.
func (s *Searcher) runClimbs(u int) {
	d := s.d
	if cap(s.resBuf) < u*d {
		s.resBuf = make([]float64, u*d)
		s.resOK = make([]bool, u)
		s.dens = make([]float64, u)
	}
	s.resBuf = s.resBuf[:u*d]
	s.resOK = s.resOK[:u]
	s.dens = s.dens[:u]
	copy(s.resBuf, s.uniq)

	workers := s.cfg.Workers
	if workers > u {
		workers = u
	}
	if workers <= 1 {
		buf := s.buf(0)
		for i := 0; i < u; i++ {
			s.dens[i], s.resOK[i] = s.climb(s.resBuf[i*d:(i+1)*d], buf)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		buf := s.buf(w)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= u {
					return
				}
				s.dens[i], s.resOK[i] = s.climb(s.resBuf[i*d:(i+1)*d], buf)
			}
		}()
	}
	wg.Wait()
}

// buf returns worker w's climb scratch, growing the pool on first use.
func (s *Searcher) buf(w int) *climbBuf {
	for len(s.bufs) <= w {
		s.bufs = append(s.bufs, &climbBuf{
			ids: make([]int, 0, 256),
			num: make([]float64, s.d),
		})
	}
	return s.bufs[w]
}

// climb runs the mean-shift iteration in scaled space, mutating x in
// place. It reports the final kernel density and whether the start ever
// saw any support.
//
// The neighbourhood is gathered once per gatherSlack of movement: grid
// IDs resolve to a dense (weight, coordinates) copy so the kernel loop
// streams sequential memory, and subsequent iterations skip the grid
// walk entirely until the point drifts out of the slack disc. The
// spatial cutoff test inside the loop discards the slack ring, so the
// result is independent of how the neighbourhood was gathered.
func (s *Searcher) climb(x []float64, buf *climbBuf) (float64, bool) {
	cfg := s.cfg
	d := s.d
	r2cut := cfg.CutoffSigmas * cfg.CutoffSigmas
	exact := cfg.ExactKernel
	tol2 := cfg.Tol * cfg.Tol
	var ax, ay float64
	gathered := false
	var dens float64
	for iter := 0; iter < cfg.MaxIter; iter++ {
		if dx, dy := x[0]-ax, x[1]-ay; !gathered || dx*dx+dy*dy > gatherSlack*gatherSlack {
			ax, ay = x[0], x[1]
			buf.ids = s.grid.WithinRadius(geometry.V(ax, ay), cfg.CutoffSigmas+gatherSlack, buf.ids[:0])
			buf.w = buf.w[:0]
			if d == 3 {
				buf.gx, buf.gy, buf.gz = buf.gx[:0], buf.gy[:0], buf.gz[:0]
				for _, j := range buf.ids {
					if s.weights[j] <= 0 {
						continue
					}
					buf.w = append(buf.w, s.weights[j])
					buf.gx = append(buf.gx, s.scaled[3*j])
					buf.gy = append(buf.gy, s.scaled[3*j+1])
					buf.gz = append(buf.gz, s.scaled[3*j+2])
				}
			} else {
				buf.coords = buf.coords[:0]
				for _, j := range buf.ids {
					if s.weights[j] <= 0 {
						continue
					}
					buf.w = append(buf.w, s.weights[j])
					buf.coords = append(buf.coords, s.scaled[j*d:(j+1)*d]...)
				}
			}
			gathered = true
		}

		var denom float64
		if d == 3 {
			// The localizer's (x, y, strength) search space — worth its
			// own loop: per-coordinate streams and scalar accumulators.
			x0, x1, x2 := x[0], x[1], x[2]
			var n0, n1, n2 float64
			gx := buf.gx
			gy := buf.gy[:len(gx)]
			gz := buf.gz[:len(gx)]
			ws := buf.w[:len(gx)]
			for i := range gx {
				dx := x0 - gx[i]
				dy := x1 - gy[i]
				if dx*dx+dy*dy > r2cut {
					continue
				}
				dz := x2 - gz[i]
				d2 := dx*dx + dy*dy + dz*dz
				// expNegHalf, spelled out: the call (with its math.Exp
				// fallback) is past the inliner's budget, and the kernel
				// is the single hottest expression in the filter.
				var e float64
				if d2 < expTableMax && !exact {
					t := d2 * expTableInvStep
					ti := int(t)
					f := t - float64(ti)
					e = expTable[ti] + f*(expTable[ti+1]-expTable[ti])
				} else {
					e = math.Exp(-0.5 * d2)
				}
				kv := ws[i] * e
				denom += kv
				n0 += kv * gx[i]
				n1 += kv * gy[i]
				n2 += kv * gz[i]
			}
			buf.num[0], buf.num[1], buf.num[2] = n0, n1, n2
		} else {
			num := buf.num
			for k := range num {
				num[k] = 0
			}
			for i, w := range buf.w {
				base := i * d
				dx := x[0] - buf.coords[base]
				dy := x[1] - buf.coords[base+1]
				if dx*dx+dy*dy > r2cut {
					continue
				}
				d2 := dx*dx + dy*dy
				for k := 2; k < d; k++ {
					diff := x[k] - buf.coords[base+k]
					d2 += diff * diff
				}
				kv := w * expNegHalf(d2, exact)
				denom += kv
				for k := 0; k < d; k++ {
					num[k] += kv * buf.coords[base+k]
				}
			}
		}
		if denom <= 0 {
			return 0, false
		}
		var move float64
		for k := 0; k < d; k++ {
			nx := buf.num[k] / denom
			diff := nx - x[k]
			move += diff * diff
			x[k] = nx
		}
		dens = denom
		if move < tol2 {
			return dens, true
		}
	}
	return dens, true
}

// mergeModes greedily merges converged points within MergeRadius,
// keeping the densest representative. Candidates are visited in
// descending density (ties broken by start order), so the merge is
// deterministic.
func (s *Searcher) mergeModes(u int) []Mode {
	d := s.d
	order := s.ord[:0]
	for i := 0; i < u; i++ {
		if s.resOK[i] {
			order = append(order, i)
		}
	}
	sort.Slice(order, func(a, b int) bool {
		da, db := s.dens[order[a]], s.dens[order[b]]
		if da != db {
			return da > db
		}
		return order[a] < order[b]
	})

	var modes []Mode
	r2 := s.cfg.MergeRadius * s.cfg.MergeRadius
	for _, i := range order {
		pt := s.resBuf[i*d : (i+1)*d]
		merged := false
		for mi := range modes {
			var dist2 float64
			for k := 0; k < d; k++ {
				diff := modes[mi].Point[k] - pt[k]
				dist2 += diff * diff
			}
			if dist2 <= r2 {
				modes[mi].Starts += s.mult[i]
				merged = true
				break
			}
		}
		if !merged {
			cp := make([]float64, d)
			copy(cp, pt)
			modes = append(modes, Mode{Point: cp, Density: s.dens[i], Starts: s.mult[i]})
		}
	}
	return modes
}

// AssignMass distributes the points' weights over the modes: each point
// is credited to its nearest mode when their scaled-space distance is
// within cutoff bandwidths (≤ 0 selects CutoffSigmas), otherwise it
// stays unassigned. The return value has one total per mode (same
// order) followed by the unassigned remainder at index len(modes).
func (s *Searcher) AssignMass(modes []Mode, points, weights []float64, cutoff float64) ([]float64, error) {
	d := s.d
	if len(points)%d != 0 {
		return nil, ErrDimensionMismatch
	}
	n := len(points) / d
	if len(weights) != n {
		return nil, ErrDimensionMismatch
	}
	if cutoff <= 0 {
		cutoff = s.cfg.CutoffSigmas
	}
	out := make([]float64, len(modes)+1)
	c2 := cutoff * cutoff
	if cap(s.invBW) < d {
		s.invBW = make([]float64, d)
	}
	invBW := s.invBW[:d]
	for k := 0; k < d; k++ {
		invBW[k] = 1 / s.cfg.Bandwidth[k]
	}
	for j := 0; j < n; j++ {
		best := -1
		bestD2 := math.Inf(1)
		base := j * d
		for mi := range modes {
			mp := modes[mi].Point
			var d2 float64
			for k := 0; k < d; k++ {
				diff := (points[base+k] - mp[k]) * invBW[k]
				d2 += diff * diff
			}
			if d2 < bestD2 {
				bestD2 = d2
				best = mi
			}
		}
		if best >= 0 && bestD2 <= c2 {
			out[best] += weights[j]
		} else {
			out[len(modes)] += weights[j]
		}
	}
	return out, nil
}

// FindModes is the one-shot convenience form: it builds a throwaway
// Searcher and runs a single search. Hot paths should hold a Searcher
// and reuse it.
func FindModes(cfg Config, points []float64, weights []float64, starts []float64) ([]Mode, error) {
	s, err := NewSearcher(cfg)
	if err != nil {
		return nil, err
	}
	return s.FindModes(points, weights, starts)
}

// AssignMass is the one-shot convenience form of Searcher.AssignMass.
func AssignMass(cfg Config, modes []Mode, points []float64, weights []float64, cutoff float64) ([]float64, error) {
	s, err := NewSearcher(cfg)
	if err != nil {
		return nil, err
	}
	return s.AssignMass(modes, points, weights, cutoff)
}

// expTable tabulates exp(−x/2) on [0, expTableMax] at expTableStep
// spacing for linear interpolation. For f(x) = e^{−x/2} the
// interpolation error is bounded by step²/8 · max|f''| = step²/32
// relative (f''/f = 1/4 everywhere), ≈ 4.8·10⁻⁷ at 1/256 — three
// orders of magnitude below the kernel's CutoffSigmas truncation.
const (
	expTableMax     = 32.0
	expTableStep    = 1.0 / 256
	expTableInvStep = 256.0
	expTableLen     = int(expTableMax*expTableInvStep) + 2
)

var expTable = buildExpTable()

func buildExpTable() []float64 {
	t := make([]float64, expTableLen)
	for i := range t {
		t[i] = math.Exp(-0.5 * float64(i) * expTableStep)
	}
	return t
}

// expNegHalf returns exp(−d2/2), by linear interpolation of expTable
// for in-range d2 and by math.Exp when exact is set or d2 falls outside
// the table. d2 must be ≥ 0 (it is a squared distance).
func expNegHalf(d2 float64, exact bool) float64 {
	if exact || d2 >= expTableMax {
		return math.Exp(-0.5 * d2)
	}
	t := d2 * expTableInvStep
	i := int(t)
	f := t - float64(i)
	return expTable[i] + f*(expTable[i+1]-expTable[i])
}
