package meanshift

import (
	"math"
)

// SuggestBandwidth computes a per-dimension kernel bandwidth from the
// weighted sample using Silverman's rule of thumb,
//
//	h_k = σ_k · (4 / ((d+2) n_eff))^(1/(d+4))
//
// with σ_k the weighted standard deviation of dimension k and n_eff =
// (Σw)²/Σw² the effective sample size (Kish). It gives a data-driven
// alternative to the fixed bandwidths of Config when the particle
// spread varies a lot over a run — wide early (uniform particles),
// narrow after convergence.
//
// Dimensions with (near-)zero spread get a floor of 1e-6 so the result
// is always usable as a Config.Bandwidth. points is the usual flat
// n×d array; d is the dimensionality. Returns nil when there are no
// points or the weights sum to zero.
func SuggestBandwidth(points []float64, weights []float64, d int) []float64 {
	if d < 1 || len(points) == 0 || len(points)%d != 0 {
		return nil
	}
	n := len(points) / d
	if len(weights) != n {
		return nil
	}
	var wSum, w2Sum float64
	for _, w := range weights {
		if w > 0 {
			wSum += w
			w2Sum += w * w
		}
	}
	if wSum <= 0 {
		return nil
	}
	nEff := wSum * wSum / w2Sum

	// Weighted mean and variance per dimension.
	mean := make([]float64, d)
	for j := 0; j < n; j++ {
		w := weights[j]
		if w <= 0 {
			continue
		}
		for k := 0; k < d; k++ {
			mean[k] += w * points[j*d+k]
		}
	}
	for k := range mean {
		mean[k] /= wSum
	}
	variance := make([]float64, d)
	for j := 0; j < n; j++ {
		w := weights[j]
		if w <= 0 {
			continue
		}
		for k := 0; k < d; k++ {
			diff := points[j*d+k] - mean[k]
			variance[k] += w * diff * diff
		}
	}

	factor := math.Pow(4/(float64(d+2)*nEff), 1/float64(d+4))
	out := make([]float64, d)
	for k := 0; k < d; k++ {
		sigma := math.Sqrt(variance[k] / wSum)
		h := sigma * factor
		if h < 1e-6 {
			h = 1e-6
		}
		out[k] = h
	}
	return out
}
