package meanshift

import (
	"math"
	"testing"

	"radloc/internal/rng"
)

func TestSuggestBandwidthGaussianSample(t *testing.T) {
	s := rng.New(1, 1)
	const n = 5000
	pts := make([]float64, 0, 2*n)
	ws := make([]float64, n)
	for i := 0; i < n; i++ {
		pts = append(pts, s.Normal(0, 10), s.Normal(0, 2))
		ws[i] = 1
	}
	h := SuggestBandwidth(pts, ws, 2)
	if h == nil {
		t.Fatal("nil bandwidth")
	}
	// Silverman for d=2: h_k = σ_k (4/(4n))^(1/6) = σ_k n^(-1/6).
	want0 := 10 * math.Pow(float64(n), -1.0/6)
	want1 := 2 * math.Pow(float64(n), -1.0/6)
	if math.Abs(h[0]-want0)/want0 > 0.1 {
		t.Errorf("h[0] = %v, want ≈%v", h[0], want0)
	}
	if math.Abs(h[1]-want1)/want1 > 0.1 {
		t.Errorf("h[1] = %v, want ≈%v", h[1], want1)
	}
	// Wider dimension must receive a wider bandwidth.
	if h[0] <= h[1] {
		t.Errorf("bandwidth ordering wrong: %v", h)
	}
}

func TestSuggestBandwidthWeighted(t *testing.T) {
	// Two points with all mass on one of them: effective n = 1, spread
	// dominated by the heavy point's location → floor kicks in for a
	// degenerate (single-point) sample.
	pts := []float64{0, 0, 100, 100}
	ws := []float64{1, 0}
	h := SuggestBandwidth(pts, ws, 2)
	if h == nil {
		t.Fatal("nil bandwidth")
	}
	for k, v := range h {
		if v != 1e-6 {
			t.Errorf("h[%d] = %v, want floor 1e-6 (zero spread)", k, v)
		}
	}
}

func TestSuggestBandwidthDegenerateInputs(t *testing.T) {
	if h := SuggestBandwidth(nil, nil, 2); h != nil {
		t.Errorf("empty input: %v", h)
	}
	if h := SuggestBandwidth([]float64{1, 2, 3}, []float64{1}, 2); h != nil {
		t.Errorf("ragged input: %v", h)
	}
	if h := SuggestBandwidth([]float64{1, 2}, []float64{1, 1}, 2); h != nil {
		t.Errorf("weight mismatch: %v", h)
	}
	if h := SuggestBandwidth([]float64{1, 2}, []float64{0}, 2); h != nil {
		t.Errorf("zero weights: %v", h)
	}
	if h := SuggestBandwidth([]float64{1, 2}, []float64{1}, 0); h != nil {
		t.Errorf("zero dim: %v", h)
	}
}

func TestSuggestBandwidthFeedsFindModes(t *testing.T) {
	// End to end: suggested bandwidths must be a valid Config and find
	// the two clusters.
	s := rng.New(2, 2)
	var pts, ws []float64
	pts, ws = cluster3(s, pts, ws, 400, 20, 20, 50, 2, 1)
	pts, ws = cluster3(s, pts, ws, 400, 80, 70, 120, 2, 1)
	h := SuggestBandwidth(pts, ws, 3)
	if h == nil {
		t.Fatal("nil bandwidth")
	}
	// The sample spans two clusters, so Silverman over-smooths compared
	// to per-cluster spread; still the mode count must come out right
	// after scaling down (a common practice: h/2 for multimodal data).
	for k := range h {
		h[k] /= 2
	}
	starts := []float64{20, 20, 50, 80, 70, 120}
	modes, err := FindModes(Config{Bandwidth: h}, pts, ws, starts)
	if err != nil {
		t.Fatal(err)
	}
	if len(modes) != 2 {
		t.Errorf("modes with suggested bandwidth = %d, want 2 (h=%v)", len(modes), h)
	}
}
