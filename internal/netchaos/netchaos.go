// Package netchaos is a deterministic network-fault injector for
// testing the sensor-to-fusion transport: a seeded http.RoundTripper
// that drops requests, drops responses (so the server applies work the
// client never hears about — the duplicate-generating failure), adds
// latency and jitter, injects 5xx and connection resets, and enforces
// hard partition windows with scheduled heals; plus a TCP-level proxy
// for chaos below the HTTP layer.
//
// Every decision draws from an injected rng.Stream and every time
// read from an injected clock.Clock, so a given (seed, schedule,
// workload) triple replays the identical fault pattern on every run —
// chaos you can put in CI.
package netchaos

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"radloc/internal/clock"
	"radloc/internal/rng"
)

// Window is a time interval, relative to the injector's start, during
// which a fault schedule entry is active. To is exclusive; a zero To
// means "never heals".
type Window struct {
	From time.Duration
	To   time.Duration
}

// contains reports whether elapsed falls inside the window.
func (w Window) contains(elapsed time.Duration) bool {
	if elapsed < w.From {
		return false
	}
	return w.To == 0 || elapsed < w.To
}

// Config tunes a RoundTripper.
type Config struct {
	// Seed derives the injector's rng stream.
	Seed uint64
	// Clock is the time source (required; share it with the transport
	// client under test so partitions and backoff live on one
	// timeline).
	Clock clock.Clock
	// DropProb drops the request before it reaches the server.
	DropProb float64
	// RespDropProb forwards the request but discards the response —
	// the server did the work, the client sees a failure and retries.
	// This is the fault that manufactures duplicates.
	RespDropProb float64
	// ResetProb fails the request with a connection-reset error.
	ResetProb float64
	// Err5xxProb answers with a synthetic 502 without forwarding.
	Err5xxProb float64
	// Latency and Jitter add Latency + uniform(0, Jitter) of delay to
	// forwarded requests.
	Latency time.Duration
	Jitter  time.Duration
	// Partitions are hard-partition windows: every request inside one
	// fails with a network error and nothing is forwarded. Heal is
	// scheduled by the window's To.
	Partitions []Window
}

// ErrDropped is the synthetic error for a request lost in flight.
var ErrDropped = errors.New("netchaos: request dropped")

// ErrRespDropped is the synthetic error for a response lost after the
// server processed the request.
var ErrRespDropped = errors.New("netchaos: response dropped")

// ErrPartitioned is the synthetic error for a request during a hard
// partition.
var ErrPartitioned = errors.New("netchaos: network partitioned")

// ErrReset is the synthetic connection-reset error.
var ErrReset = errors.New("netchaos: connection reset by peer")

// Stats counts what the injector did.
type Stats struct {
	Forwarded   uint64 `json:"forwarded"`
	Dropped     uint64 `json:"dropped"`
	RespDropped uint64 `json:"respDropped"`
	Partitioned uint64 `json:"partitioned"`
	Resets      uint64 `json:"resets"`
	Injected5xx uint64 `json:"injected5xx"`
}

// RoundTripper injects faults in front of a base http.RoundTripper.
// Safe for concurrent use.
type RoundTripper struct {
	base  http.RoundTripper
	cfg   Config
	start time.Time

	mu    sync.Mutex
	rng   *rng.Stream
	stats Stats
}

// New wraps base with fault injection. The start of the fault
// timeline is cfg.Clock.Now() at the moment of the call.
func New(base http.RoundTripper, cfg Config) *RoundTripper {
	if base == nil {
		base = http.DefaultTransport
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.Real{}
	}
	return &RoundTripper{
		base:  base,
		cfg:   cfg,
		start: cfg.Clock.Now(),
		rng:   rng.NewNamed(cfg.Seed, "netchaos/roundtripper"),
	}
}

// Stats returns a copy of the fault counters.
func (t *RoundTripper) Stats() Stats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.stats
}

// Partitioned reports whether the timeline currently sits inside a
// partition window.
func (t *RoundTripper) Partitioned() bool {
	elapsed := t.cfg.Clock.Now().Sub(t.start)
	for _, w := range t.cfg.Partitions {
		if w.contains(elapsed) {
			return true
		}
	}
	return false
}

// RoundTrip implements http.RoundTripper.
func (t *RoundTripper) RoundTrip(req *http.Request) (*http.Response, error) {
	if t.Partitioned() {
		t.mu.Lock()
		t.stats.Partitioned++
		t.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrPartitioned, req.URL.Host)
	}
	t.mu.Lock()
	reset := t.rng.Float64() < t.cfg.ResetProb
	drop := t.rng.Float64() < t.cfg.DropProb
	respDrop := t.rng.Float64() < t.cfg.RespDropProb
	inject5xx := t.rng.Float64() < t.cfg.Err5xxProb
	var jitter time.Duration
	if t.cfg.Jitter > 0 {
		jitter = time.Duration(t.rng.Float64() * float64(t.cfg.Jitter))
	}
	switch {
	case reset:
		t.stats.Resets++
	case drop:
		t.stats.Dropped++
	case inject5xx:
		t.stats.Injected5xx++
	}
	t.mu.Unlock()
	switch {
	case reset:
		return nil, ErrReset
	case drop:
		return nil, fmt.Errorf("%w: %s %s", ErrDropped, req.Method, req.URL.Path)
	case inject5xx:
		return &http.Response{
			StatusCode: http.StatusBadGateway,
			Status:     "502 Bad Gateway (injected)",
			Header:     http.Header{},
			Body:       io.NopCloser(strings.NewReader("netchaos: injected 502\n")),
			Request:    req,
		}, nil
	}
	if delay := t.cfg.Latency + jitter; delay > 0 {
		t.cfg.Clock.Sleep(delay)
	}
	resp, err := t.base.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	if respDrop {
		// The server has fully processed the request; lose the answer.
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
		t.mu.Lock()
		t.stats.RespDropped++
		t.mu.Unlock()
		return nil, ErrRespDropped
	}
	t.mu.Lock()
	t.stats.Forwarded++
	t.mu.Unlock()
	return resp, nil
}
