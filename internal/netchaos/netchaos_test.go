package netchaos

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"radloc/internal/clock"
)

// okRT answers every request with 200 and counts them.
type okRT struct{ served atomic.Uint64 }

func (o *okRT) RoundTrip(req *http.Request) (*http.Response, error) {
	o.served.Add(1)
	return &http.Response{
		StatusCode: http.StatusOK,
		Header:     http.Header{},
		Body:       io.NopCloser(strings.NewReader("ok")),
		Request:    req,
	}, nil
}

func get(t *testing.T, rt http.RoundTripper) (*http.Response, error) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, "http://fusion.test/x", nil)
	if err != nil {
		t.Fatal(err)
	}
	return rt.RoundTrip(req)
}

func TestRoundTripperDeterministic(t *testing.T) {
	run := func() (Stats, []error) {
		base := &okRT{}
		rt := New(base, Config{
			Seed:         42,
			Clock:        clock.NewFake(time.Unix(0, 0)),
			DropProb:     0.3,
			RespDropProb: 0.2,
			ResetProb:    0.1,
			Err5xxProb:   0.1,
		})
		var errs []error
		for i := 0; i < 200; i++ {
			resp, err := get(t, rt)
			errs = append(errs, err)
			if resp != nil {
				resp.Body.Close()
			}
		}
		return rt.Stats(), errs
	}
	s1, e1 := run()
	s2, e2 := run()
	if s1 != s2 {
		t.Fatalf("stats diverged: %+v vs %+v", s1, s2)
	}
	for i := range e1 {
		if (e1[i] == nil) != (e2[i] == nil) || (e1[i] != nil && e1[i].Error() != e2[i].Error()) {
			t.Fatalf("request %d outcome diverged: %v vs %v", i, e1[i], e2[i])
		}
	}
	if s1.Dropped == 0 || s1.RespDropped == 0 || s1.Resets == 0 || s1.Injected5xx == 0 || s1.Forwarded == 0 {
		t.Errorf("fault mix not exercised: %+v", s1)
	}
}

func TestRoundTripperPartitionHeals(t *testing.T) {
	clk := clock.NewFake(time.Unix(0, 0))
	base := &okRT{}
	rt := New(base, Config{
		Seed:       1,
		Clock:      clk,
		Partitions: []Window{{From: 2 * time.Second, To: 12 * time.Second}},
	})
	// Before the partition: forwarded.
	if _, err := get(t, rt); err != nil {
		t.Fatalf("pre-partition: %v", err)
	}
	clk.Advance(3 * time.Second) // inside [2s, 12s)
	if _, err := get(t, rt); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("inside partition: err = %v", err)
	}
	clk.Advance(8 * time.Second) // t=11s, still inside
	if _, err := get(t, rt); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("still partitioned: err = %v", err)
	}
	clk.Advance(time.Second) // t=12s: healed (To exclusive)
	if _, err := get(t, rt); err != nil {
		t.Fatalf("post-heal: %v", err)
	}
	st := rt.Stats()
	if st.Partitioned != 2 || st.Forwarded != 2 {
		t.Errorf("stats = %+v", st)
	}
	if base.served.Load() != 2 {
		t.Errorf("server saw %d requests during the exercise, want 2", base.served.Load())
	}
}

func TestRoundTripperRespDropReachesServer(t *testing.T) {
	base := &okRT{}
	rt := New(base, Config{Seed: 3, Clock: clock.NewFake(time.Unix(0, 0)), RespDropProb: 1})
	if _, err := get(t, rt); !errors.Is(err, ErrRespDropped) {
		t.Fatalf("err = %v, want ErrRespDropped", err)
	}
	if base.served.Load() != 1 {
		t.Fatal("response drop must still deliver the request to the server")
	}
}

func TestRoundTripperLatencySleepsOnClock(t *testing.T) {
	clk := clock.NewFake(time.Unix(0, 0))
	rt := New(&okRT{}, Config{Seed: 4, Clock: clk, Latency: 100 * time.Millisecond, Jitter: 50 * time.Millisecond})
	for i := 0; i < 5; i++ {
		resp, err := get(t, rt)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	slept := clk.Slept()
	if len(slept) != 5 {
		t.Fatalf("sleeps = %d, want 5", len(slept))
	}
	for _, d := range slept {
		if d < 100*time.Millisecond || d >= 150*time.Millisecond {
			t.Errorf("latency %v outside [100ms, 150ms)", d)
		}
	}
}

// TestProxyForwardsAndPartitions: bytes flow through the TCP proxy to
// a real HTTP server; during a partition window connections are
// refused; after the heal they flow again.
func TestProxyForwardsAndPartitions(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "pong")
	}))
	defer srv.Close()
	target := strings.TrimPrefix(srv.URL, "http://")

	clk := clock.NewFake(time.Unix(0, 0))
	p, err := NewProxy("127.0.0.1:0", target, ProxyConfig{
		Seed:       5,
		Clock:      clk,
		Partitions: []Window{{From: 10 * time.Second, To: 20 * time.Second}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	// Fresh connection per request: the proxy kills conns on partition.
	client := &http.Client{Transport: &http.Transport{DisableKeepAlives: true}, Timeout: 5 * time.Second}
	fetch := func() error {
		resp, err := client.Get("http://" + p.Addr() + "/ping")
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		if string(body) != "pong" {
			return errors.New("wrong body " + string(body))
		}
		return nil
	}
	if err := fetch(); err != nil {
		t.Fatalf("pre-partition fetch: %v", err)
	}
	clk.Advance(15 * time.Second)
	if err := fetch(); err == nil {
		t.Fatal("fetch succeeded during partition")
	}
	clk.Advance(5 * time.Second)
	if err := fetch(); err != nil {
		t.Fatalf("post-heal fetch: %v", err)
	}
}

func TestProxyAcceptDrop(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "pong")
	}))
	defer srv.Close()
	p, err := NewProxy("127.0.0.1:0", strings.TrimPrefix(srv.URL, "http://"), ProxyConfig{
		Seed:           6,
		AcceptDropProb: 1, // every connection dies at accept
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	client := &http.Client{Transport: &http.Transport{DisableKeepAlives: true}, Timeout: 2 * time.Second}
	if _, err := client.Get("http://" + p.Addr() + "/ping"); err == nil {
		t.Fatal("connection survived AcceptDropProb=1")
	}
}
