package netchaos

import (
	"io"
	"net"
	"sync"
	"time"

	"radloc/internal/clock"
	"radloc/internal/rng"
)

// ProxyConfig tunes a Proxy.
type ProxyConfig struct {
	// Seed derives the proxy's rng stream.
	Seed uint64
	// Clock is the partition/latency time source (default wall clock —
	// the proxy moves real bytes, so virtual time only makes sense
	// when the workload also sleeps on the same fake).
	Clock clock.Clock
	// AcceptDropProb closes a freshly accepted connection immediately.
	AcceptDropProb float64
	// Latency delays each upstream write by a fixed amount.
	Latency time.Duration
	// Partitions are windows (relative to proxy start) during which
	// new connections are refused and existing ones are severed.
	Partitions []Window
}

// Proxy is a chaos TCP proxy: it forwards byte streams to a target
// address while injecting connection-level faults below HTTP. Use it
// to exercise the transport against faults the RoundTripper cannot
// express (mid-stream severing, TCP-level partitions).
type Proxy struct {
	ln     net.Listener
	target string
	cfg    ProxyConfig
	start  time.Time

	mu     sync.Mutex
	rng    *rng.Stream
	conns  map[net.Conn]struct{}
	closed bool

	wg sync.WaitGroup
}

// NewProxy listens on listenAddr (e.g. "127.0.0.1:0") and forwards to
// target. It serves until Close.
func NewProxy(listenAddr, target string, cfg ProxyConfig) (*Proxy, error) {
	if cfg.Clock == nil {
		cfg.Clock = clock.Real{}
	}
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return nil, err
	}
	p := &Proxy{
		ln:     ln,
		target: target,
		cfg:    cfg,
		start:  cfg.Clock.Now(),
		rng:    rng.NewNamed(cfg.Seed, "netchaos/proxy"),
		conns:  make(map[net.Conn]struct{}),
	}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the proxy's listen address.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// Partitioned reports whether the proxy currently sits inside a
// partition window; if so it also severs every live connection (the
// check doubles as the enforcement point, so long-lived streams die
// when the partition starts, not at their next dial).
func (p *Proxy) Partitioned() bool {
	elapsed := p.cfg.Clock.Now().Sub(p.start)
	for _, w := range p.cfg.Partitions {
		if w.contains(elapsed) {
			p.severAll()
			return true
		}
	}
	return false
}

func (p *Proxy) severAll() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for c := range p.conns {
		c.Close()
		delete(p.conns, c)
	}
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return // listener closed
		}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			conn.Close()
			return
		}
		dropped := p.rng.Float64() < p.cfg.AcceptDropProb
		p.mu.Unlock()
		if dropped || p.Partitioned() {
			conn.Close()
			continue
		}
		p.wg.Add(1)
		go p.forward(conn)
	}
}

// forward pipes one client connection to the target and back.
func (p *Proxy) forward(client net.Conn) {
	defer p.wg.Done()
	upstream, err := net.Dial("tcp", p.target)
	if err != nil {
		client.Close()
		return
	}
	p.mu.Lock()
	p.conns[client] = struct{}{}
	p.conns[upstream] = struct{}{}
	p.mu.Unlock()
	defer func() {
		p.mu.Lock()
		delete(p.conns, client)
		delete(p.conns, upstream)
		p.mu.Unlock()
		client.Close()
		upstream.Close()
	}()

	done := make(chan struct{}, 2)
	copyDir := func(dst, src net.Conn, delay time.Duration) {
		buf := make([]byte, 32<<10)
		for {
			n, rerr := src.Read(buf)
			if n > 0 {
				if p.Partitioned() {
					break // severed mid-stream
				}
				if delay > 0 {
					p.cfg.Clock.Sleep(delay)
				}
				if _, werr := dst.Write(buf[:n]); werr != nil {
					break
				}
			}
			if rerr != nil {
				break
			}
		}
		done <- struct{}{}
	}
	go copyDir(upstream, client, p.cfg.Latency)
	go copyDir(client, upstream, 0)
	<-done
}

// Close stops accepting, severs every connection and waits for the
// forwarders to finish.
func (p *Proxy) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	p.mu.Unlock()
	err := p.ln.Close()
	p.severAll()
	p.wg.Wait()
	return err
}

var _ io.Closer = (*Proxy)(nil)
