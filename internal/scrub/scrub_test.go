package scrub

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"radloc/internal/wal"
)

// stubStore is a scriptable Store for unit tests.
type stubStore struct {
	mu          sync.Mutex
	segs        []wal.SegmentInfo
	corrupt     map[uint64]error // start → verify error
	badCkpts    []uint64
	verified    []uint64
	quarantined []uint64
	repaired    [][2]uint64
	repairSrc   string
	repairErr   error
}

func (s *stubStore) Segments() []wal.SegmentInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]wal.SegmentInfo(nil), s.segs...)
}

func (s *stubStore) VerifySegment(start uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.verified = append(s.verified, start)
	return s.corrupt[start]
}

func (s *stubStore) QuarantineSegment(start uint64) (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.quarantined = append(s.quarantined, start)
	for i, seg := range s.segs {
		if seg.Start == start {
			n := seg.Count
			s.segs = append(s.segs[:i], s.segs[i+1:]...)
			return n, nil
		}
	}
	return 0, errors.New("no such segment")
}

func (s *stubStore) VerifyCheckpoints() ([]uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	bad := s.badCkpts
	s.badCkpts = nil
	return bad, nil
}

func (s *stubStore) QuarantineCheckpoint(uint64) error { return nil }

func (s *stubStore) Repair(_ context.Context, from, to uint64) (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.repairErr != nil {
		return "", s.repairErr
	}
	s.repaired = append(s.repaired, [2]uint64{from, to})
	if s.repairSrc == "" {
		return "local", nil
	}
	return s.repairSrc, nil
}

func targetsFor(st *stubStore) func() []Target {
	return func() []Target { return []Target{{Zone: "default", Store: st}} }
}

// TestCloseIsPrompt pins the shutdown contract: Close must return
// without waiting out the scrub interval, even when the loop is
// asleep mid-interval. A regression here stalls daemon shutdown for
// up to the full -scrub-interval (default 15m).
func TestCloseIsPrompt(t *testing.T) {
	scr, err := New(Options{Targets: targetsFor(&stubStore{}), Interval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	scr.Start()
	time.Sleep(10 * time.Millisecond) // let the loop reach its sleep
	done := make(chan struct{})
	go func() { scr.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not return while the loop slept mid-interval")
	}
}

// TestTickRoundRobinsSealedSegments checks that successive ticks walk
// the sealed segments in offset order and wrap, never touching the
// unsealed tail.
func TestTickRoundRobinsSealedSegments(t *testing.T) {
	st := &stubStore{segs: []wal.SegmentInfo{
		{Start: 0, Count: 4, Sealed: true},
		{Start: 4, Count: 4, Sealed: true},
		{Start: 8, Count: 2, Sealed: false},
	}}
	scr, err := New(Options{Targets: targetsFor(st)})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		scr.Tick(ctx)
	}
	want := []uint64{0, 4, 0}
	if len(st.verified) != len(want) {
		t.Fatalf("verified %v, want %v", st.verified, want)
	}
	for i, w := range want {
		if st.verified[i] != w {
			t.Fatalf("verified %v, want %v", st.verified, want)
		}
	}
}

// TestTickQuarantinesAndRepairs checks the corruption path: a failing
// segment is quarantined and Repair is asked to re-anchor exactly the
// hole it left.
func TestTickQuarantinesAndRepairs(t *testing.T) {
	st := &stubStore{
		segs: []wal.SegmentInfo{
			{Start: 0, Count: 4, Sealed: true},
			{Start: 4, Count: 4, Sealed: true},
		},
		corrupt:   map[uint64]error{4: errors.New("crc mismatch")},
		repairSrc: "http://peer",
	}
	scr, err := New(Options{Targets: targetsFor(st)})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	scr.Tick(ctx) // verifies 0, clean
	scr.Tick(ctx) // verifies 4, corrupt
	if len(st.quarantined) != 1 || st.quarantined[0] != 4 {
		t.Fatalf("quarantined %v, want [4]", st.quarantined)
	}
	if len(st.repaired) != 1 || st.repaired[0] != [2]uint64{4, 8} {
		t.Fatalf("repaired %v, want [[4 8]]", st.repaired)
	}
	// The quarantined segment is gone from the listing; the next tick
	// wraps back to the surviving one instead of re-picking the hole.
	scr.Tick(ctx)
	if last := st.verified[len(st.verified)-1]; last != 0 {
		t.Fatalf("tick after quarantine verified %d, want 0", last)
	}
}

// TestTickRepairFailureKeepsTicking checks that a failed repair is
// surfaced as a metric-only event: the scrubber neither panics nor
// stops; the next tick proceeds.
func TestTickRepairFailureKeepsTicking(t *testing.T) {
	st := &stubStore{
		segs: []wal.SegmentInfo{
			{Start: 0, Count: 4, Sealed: true},
			{Start: 4, Count: 4, Sealed: true},
		},
		corrupt:   map[uint64]error{0: errors.New("crc mismatch")},
		repairErr: errors.New("no replica"),
	}
	scr, err := New(Options{Targets: targetsFor(st)})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	scr.Tick(ctx)
	scr.Tick(ctx)
	if len(st.verified) < 2 {
		t.Fatalf("scrubber stopped after failed repair: verified %v", st.verified)
	}
}
