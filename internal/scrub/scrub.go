// Package scrub runs a background integrity pass over each zone's
// cold storage. Recovery-time validation only proves a WAL segment
// was intact when the process opened it; a bit that flips afterwards
// — controller bug, cosmic ray, silent media decay — sits undetected
// until the next crash, which is exactly when it hurts. The scrubber
// closes that window: on an idle-paced, jittered cadence it re-reads
// one sealed segment per zone per tick, re-verifying every record's
// CRC envelope, and re-parses the retained checkpoints. A segment or
// checkpoint that no longer verifies is quarantined (moved aside,
// never deleted) and the hole it leaves in recovery is immediately
// re-anchored: a fresh checkpoint at or past the hole's end, seeded
// from a caught-up replica when the cluster has one — an independent
// copy, immune to whatever corrupted the local disk — or from the
// local in-memory engine otherwise.
package scrub

import (
	"context"
	"errors"
	"log"
	"sync"
	"time"

	"radloc/internal/clock"
	"radloc/internal/obs"
	"radloc/internal/rng"
	"radloc/internal/wal"
)

// Store is one zone's cold storage as the scrubber sees it. All
// methods must be safe for concurrent use with the zone's live write
// path; implementations serialize against the WAL's owner lock.
type Store interface {
	// Segments lists the zone's live WAL segments in offset order.
	// Only entries with Sealed=true are scrub targets; the active
	// tail is still being appended to.
	Segments() []wal.SegmentInfo
	// VerifySegment re-reads the sealed segment whose first record
	// sits at start and re-verifies every record. A non-nil error
	// means cold corruption.
	VerifySegment(start uint64) error
	// QuarantineSegment moves the corrupt sealed segment aside and
	// drops it from the log's bookkeeping, returning the number of
	// records set aside. The caller must re-anchor recovery next.
	QuarantineSegment(start uint64) (removed uint64, err error)
	// VerifyCheckpoints re-parses every retained checkpoint and
	// returns the applied offsets of those that no longer decode.
	VerifyCheckpoints() (bad []uint64, err error)
	// QuarantineCheckpoint moves one corrupt checkpoint aside.
	QuarantineCheckpoint(applied uint64) error
	// Repair re-anchors recovery over the hole [from, to): it must
	// leave a durable checkpoint whose applied offset is at least to.
	// It returns a short label for the state's source ("local", or
	// the replica's URL) for logs and metrics.
	Repair(ctx context.Context, from, to uint64) (source string, err error)
}

// Target pairs a zone name with its store. Targets are re-enumerated
// every tick, so zones that appear, idle out, or degrade between
// ticks are picked up or skipped naturally.
type Target struct {
	// Zone is the zone's name, used in logs and to key the scrub
	// cursor.
	Zone string
	// Store is the zone's cold storage.
	Store Store
}

// Options configures a Scrubber.
type Options struct {
	// Targets enumerates the zones to scrub; called once per tick.
	// Required. The callback should omit zones whose storage is
	// degraded — there is no point re-reading a disk that cannot
	// accept the repair.
	Targets func() []Target
	// Interval is the base tick period (default 15m). Each tick
	// verifies at most one sealed segment per zone, so a zone with N
	// cold segments is fully re-verified every N intervals.
	Interval time.Duration
	// Jitter is the ± fraction of Interval each tick is displaced by
	// (default 0.2), so a fleet does not scrub in lockstep.
	Jitter float64
	// Clock drives the schedule (default the wall clock).
	Clock clock.Clock
	// RNG jitters the schedule; nil seeds a fixed stream.
	RNG *rng.Stream
	// Metrics, when non-nil, receives the radloc_scrub_* collectors.
	Metrics *obs.Registry
	// Log, when non-nil, receives detection and repair decisions.
	Log *log.Logger
}

// Scrubber is the background integrity loop. Build with New, start
// with Start, stop with Close; Tick is exported so tests drive it
// deterministically.
type Scrubber struct {
	opts Options
	met  *scrubMetrics

	mu      sync.Mutex
	cursors map[string]uint64 // per zone: first offset not yet re-verified this cycle

	cancel context.CancelFunc
	wg     sync.WaitGroup
}

// New builds a Scrubber. Call Start to begin scrubbing.
func New(opts Options) (*Scrubber, error) {
	if opts.Targets == nil {
		return nil, errors.New("scrub: Options.Targets is required")
	}
	if opts.Clock == nil {
		opts.Clock = clock.Real{}
	}
	if opts.RNG == nil {
		opts.RNG = rng.NewNamed(0x5c4b, "scrub")
	}
	if opts.Interval <= 0 {
		opts.Interval = 15 * time.Minute
	}
	if opts.Jitter < 0 || opts.Jitter >= 1 {
		opts.Jitter = 0.2
	}
	return &Scrubber{
		opts:    opts,
		met:     newScrubMetrics(opts.Metrics),
		cursors: make(map[string]uint64),
	}, nil
}

func (s *Scrubber) logf(format string, args ...any) {
	if s.opts.Log != nil {
		s.opts.Log.Printf(format, args...)
	}
}

// Start launches the scrub loop. Close stops it.
func (s *Scrubber) Start() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cancel != nil {
		return
	}
	ctx, cancel := context.WithCancel(context.Background())
	s.cancel = cancel
	s.wg.Add(1)
	go s.loop(ctx)
}

// Close stops the scrub loop and waits for it to exit.
func (s *Scrubber) Close() {
	s.mu.Lock()
	cancel := s.cancel
	s.cancel = nil
	s.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	s.wg.Wait()
}

// loop runs Tick on a jittered schedule until cancelled. The first
// tick is delayed a full interval: boot already validated everything.
func (s *Scrubber) loop(ctx context.Context) {
	defer s.wg.Done()
	for {
		s.sleep(ctx, s.jitteredInterval())
		if ctx.Err() != nil {
			return
		}
		s.Tick(ctx)
		if ctx.Err() != nil {
			return
		}
	}
}

// sleep blocks for d or until ctx is cancelled, whichever comes
// first. The Clock.Sleep runs on its own goroutine so cancellation
// does not wait out the interval — Close mid-sleep would otherwise
// stall shutdown for up to the full (default 15m) interval.
func (s *Scrubber) sleep(ctx context.Context, d time.Duration) {
	done := make(chan struct{})
	go func() {
		s.opts.Clock.Sleep(d)
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
	}
}

// jitteredInterval displaces the base interval by ±Jitter.
func (s *Scrubber) jitteredInterval() time.Duration {
	base := float64(s.opts.Interval)
	f := 1 + s.opts.Jitter*(2*s.opts.RNG.Float64()-1)
	return time.Duration(base * f)
}

// Tick runs one scrub round over every current target: checkpoints
// are all re-parsed (they are few and small), and one sealed segment
// per zone is re-read, round-robin across ticks so a zone's whole
// cold history is covered every len(segments) intervals. Exposed so
// tests drive the scrubber deterministically.
func (s *Scrubber) Tick(ctx context.Context) {
	s.met.tick()
	for _, t := range s.opts.Targets() {
		if ctx.Err() != nil {
			return
		}
		s.scrubCheckpoints(t)
		s.scrubOneSegment(ctx, t)
	}
}

// scrubCheckpoints re-parses the zone's retained checkpoints and
// quarantines any that no longer decode. No repair step is needed:
// losing a checkpoint only lengthens the next replay, and the very
// next cadence checkpoint replaces it.
func (s *Scrubber) scrubCheckpoints(t Target) {
	bad, err := t.Store.VerifyCheckpoints()
	if err != nil {
		s.logf("scrub: zone %q: verify checkpoints: %v", t.Zone, err)
		return
	}
	s.met.checkpointsVerified()
	for _, applied := range bad {
		s.met.corruption("checkpoint")
		if qerr := t.Store.QuarantineCheckpoint(applied); qerr != nil {
			s.logf("scrub: zone %q: checkpoint@%d corrupt but quarantine failed: %v", t.Zone, applied, qerr)
			continue
		}
		s.logf("scrub: zone %q: checkpoint@%d no longer decodes; quarantined (next cadence checkpoint replaces it)",
			t.Zone, applied)
	}
}

// scrubOneSegment advances the zone's cursor to the next sealed
// segment, re-verifies it, and on corruption quarantines it and
// re-anchors recovery through the store's Repair path.
func (s *Scrubber) scrubOneSegment(ctx context.Context, t Target) {
	segs := t.Store.Segments()
	s.mu.Lock()
	cursor := s.cursors[t.Zone]
	s.mu.Unlock()
	pick, ok := nextSealed(segs, cursor)
	if !ok {
		return // nothing cold to verify
	}
	s.mu.Lock()
	s.cursors[t.Zone] = pick.Start + pick.Count
	s.mu.Unlock()

	err := t.Store.VerifySegment(pick.Start)
	s.met.segmentVerified(err != nil)
	if err == nil {
		return
	}
	s.met.corruption("segment")
	s.logf("scrub: zone %q: cold corruption in segment@%d (%d records): %v", t.Zone, pick.Start, pick.Count, err)
	removed, qerr := t.Store.QuarantineSegment(pick.Start)
	if qerr != nil {
		s.met.repairFailed()
		s.logf("scrub: zone %q: quarantine segment@%d failed: %v", t.Zone, pick.Start, qerr)
		return
	}
	end := pick.Start + pick.Count
	source, rerr := t.Store.Repair(ctx, pick.Start, end)
	if rerr != nil {
		s.met.repairFailed()
		s.logf("scrub: zone %q: segment@%d quarantined (%d records) but repair failed — recovery below offset %d is broken until a checkpoint lands: %v",
			t.Zone, pick.Start, removed, end, rerr)
		return
	}
	s.met.repaired(source)
	s.logf("scrub: zone %q: segment@%d quarantined (%d records), recovery re-anchored past %d from %s",
		t.Zone, pick.Start, removed, end, source)
}

// nextSealed picks the first sealed segment at or after cursor,
// wrapping to the oldest sealed segment when the cursor has passed
// the newest — the round-robin that makes coverage complete.
func nextSealed(segs []wal.SegmentInfo, cursor uint64) (wal.SegmentInfo, bool) {
	for _, seg := range segs {
		if seg.Sealed && seg.Start >= cursor {
			return seg, true
		}
	}
	for _, seg := range segs {
		if seg.Sealed {
			return seg, true
		}
	}
	return wal.SegmentInfo{}, false
}
