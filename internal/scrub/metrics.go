package scrub

import "radloc/internal/obs"

// scrubMetrics instruments one Scrubber. All methods are nil-receiver
// safe so an unmetered scrubber pays one branch.
type scrubMetrics struct {
	ticks       *obs.Counter
	segments    *obs.Counter
	segFailed   *obs.Counter
	ckptPasses  *obs.Counter
	corruptions *obs.CounterFamily
	repairs     *obs.CounterFamily
	repairFails *obs.Counter
}

// newScrubMetrics registers the scrubber's collectors on r; nil r
// disables instrumentation entirely.
func newScrubMetrics(r *obs.Registry) *scrubMetrics {
	if r == nil {
		return nil
	}
	return &scrubMetrics{
		ticks: r.Counter("radloc_scrub_ticks_total",
			"Scrub rounds started (one sealed segment per zone per round)."),
		segments: r.Counter("radloc_scrub_segments_verified_total",
			"Sealed WAL segments re-read and CRC-verified by the scrubber."),
		segFailed: r.Counter("radloc_scrub_segment_failures_total",
			"Sealed WAL segments that failed re-verification (cold corruption)."),
		ckptPasses: r.Counter("radloc_scrub_checkpoint_passes_total",
			"Checkpoint re-parse passes completed (all retained checkpoints per pass)."),
		corruptions: r.CounterFamily("radloc_scrub_corruptions_total",
			"Cold-corruption detections by artifact kind.", "kind"),
		repairs: r.CounterFamily("radloc_scrub_repairs_total",
			"Recovery re-anchors completed after a quarantine, by state source.", "source"),
		repairFails: r.Counter("radloc_scrub_repair_failures_total",
			"Quarantines or repairs that failed; recovery may be broken until the next checkpoint."),
	}
}

// tick accounts one scrub round.
func (m *scrubMetrics) tick() {
	if m == nil {
		return
	}
	m.ticks.Inc()
}

// segmentVerified accounts one segment re-read and whether it failed.
func (m *scrubMetrics) segmentVerified(failed bool) {
	if m == nil {
		return
	}
	m.segments.Inc()
	if failed {
		m.segFailed.Inc()
	}
}

// checkpointsVerified accounts one checkpoint re-parse pass.
func (m *scrubMetrics) checkpointsVerified() {
	if m == nil {
		return
	}
	m.ckptPasses.Inc()
}

// corruption accounts one cold-corruption detection of the given kind
// ("segment" or "checkpoint").
func (m *scrubMetrics) corruption(kind string) {
	if m == nil {
		return
	}
	m.corruptions.With(kind).Inc()
}

// repaired accounts one completed recovery re-anchor. source is
// "local" or the replica's URL; the label is reduced to local/replica
// so cardinality stays bounded.
func (m *scrubMetrics) repaired(source string) {
	if m == nil {
		return
	}
	if source != "local" {
		source = "replica"
	}
	m.repairs.With(source).Inc()
}

// repairFailed accounts one failed quarantine or repair.
func (m *scrubMetrics) repairFailed() {
	if m == nil {
		return
	}
	m.repairFails.Inc()
}
