package detect

import (
	"errors"
	"testing"

	"radloc/internal/geometry"
	"radloc/internal/radiation"
	"radloc/internal/rng"
	"radloc/internal/sensor"
)

func TestSPRTDetectsElevatedRate(t *testing.T) {
	s, err := NewSPRT(Config{Background: 5, MinElevation: 10})
	if err != nil {
		t.Fatal(err)
	}
	stream := rng.New(1, 1)
	var d Decision
	for i := 0; i < 1000; i++ {
		d = s.Observe(stream.Poisson(25)) // well above B+δ = 15
		if d != Undecided {
			break
		}
	}
	if d != SourcePresent {
		t.Fatalf("decision = %v after %d samples", d, s.Samples())
	}
	if s.Samples() > 20 {
		t.Errorf("took %d samples to detect a 5×-background source", s.Samples())
	}
}

func TestSPRTRejectsBackground(t *testing.T) {
	s, err := NewSPRT(Config{Background: 5, MinElevation: 10})
	if err != nil {
		t.Fatal(err)
	}
	stream := rng.New(2, 2)
	var d Decision
	for i := 0; i < 1000; i++ {
		d = s.Observe(stream.Poisson(5))
		if d != Undecided {
			break
		}
	}
	if d != BackgroundOnly {
		t.Fatalf("decision = %v after %d samples", d, s.Samples())
	}
}

func TestSPRTErrorRates(t *testing.T) {
	// Empirical false-alarm rate must be of the order of alpha.
	const trials = 400
	falseAlarms := 0
	stream := rng.New(3, 3)
	for trial := 0; trial < trials; trial++ {
		s, err := NewSPRT(Config{Background: 5, MinElevation: 5, Alpha: 0.05, Beta: 0.05})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 2000; i++ {
			if d := s.Observe(stream.Poisson(5)); d != Undecided {
				if d == SourcePresent {
					falseAlarms++
				}
				break
			}
		}
	}
	rate := float64(falseAlarms) / trials
	if rate > 0.10 {
		t.Errorf("false alarm rate = %v, want ≲ alpha (0.05, Wald bound ~0.05/0.95)", rate)
	}
}

func TestSPRTTerminalStateSticksUntilReset(t *testing.T) {
	s, err := NewSPRT(Config{Background: 5, MinElevation: 10})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100 && s.Decision() == Undecided; i++ {
		s.Observe(100)
	}
	if s.Decision() != SourcePresent {
		t.Fatal("did not detect")
	}
	n := s.Samples()
	s.Observe(0) // ignored after decision
	if s.Samples() != n || s.Decision() != SourcePresent {
		t.Error("terminal state not sticky")
	}
	s.Reset()
	if s.Decision() != Undecided || s.Samples() != 0 || s.LLR() != 0 {
		t.Error("reset incomplete")
	}
}

func TestSPRTNegativeCPMTreatedAsZero(t *testing.T) {
	s, err := NewSPRT(Config{Background: 5, MinElevation: 10})
	if err != nil {
		t.Fatal(err)
	}
	s.Observe(-50)
	if s.LLR() >= 0 {
		t.Errorf("negative reading should push toward H0: llr=%v", s.LLR())
	}
}

func TestSPRTConfigValidation(t *testing.T) {
	if _, err := NewSPRT(Config{Background: 5}); err == nil {
		t.Error("zero elevation accepted")
	}
	if _, err := NewSPRT(Config{Background: 5, MinElevation: 5, Alpha: 1.5}); err == nil {
		t.Error("alpha > 1 accepted")
	}
	if _, err := NewSPRT(Config{Background: 5, MinElevation: 5, Beta: -1}); err == nil {
		t.Error("negative beta accepted")
	}
	// Zero background floors instead of dividing by zero.
	s, err := NewSPRT(Config{Background: 0, MinElevation: 5})
	if err != nil {
		t.Fatal(err)
	}
	if s.Observe(100) == Undecided {
		// One huge reading over a floored background should decide.
		t.Error("floored background test inert")
	}
}

func TestMonitorQuorum(t *testing.T) {
	cfgs := make([]Config, 4)
	for i := range cfgs {
		cfgs[i] = Config{Background: 5, MinElevation: 10}
	}
	m, err := NewMonitor(cfgs, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Drive sensor 0 hot: not enough for quorum 2.
	for i := 0; i < 50; i++ {
		alarmed, err := m.Observe(0, 100)
		if err != nil {
			t.Fatal(err)
		}
		if alarmed {
			t.Fatal("alarm with a single hot sensor under quorum 2")
		}
	}
	if got := m.Triggered(); len(got) != 1 || got[0] != 0 {
		t.Fatalf("triggered = %v", got)
	}
	// Second hot sensor reaches quorum.
	alarmed := false
	for i := 0; i < 50 && !alarmed; i++ {
		alarmed, err = m.Observe(3, 100)
		if err != nil {
			t.Fatal(err)
		}
	}
	if !alarmed {
		t.Fatal("no alarm with two hot sensors")
	}
	m.Reset()
	if m.Alarmed() || len(m.Triggered()) != 0 {
		t.Error("monitor reset incomplete")
	}
}

func TestMonitorErrors(t *testing.T) {
	if _, err := NewMonitor(nil, 1); !errors.Is(err, ErrNoSensors) {
		t.Errorf("no sensors: %v", err)
	}
	if _, err := NewMonitor(make([]Config, 2), 3); err == nil {
		t.Error("quorum > sensors accepted")
	}
	cfgs := []Config{{Background: 5, MinElevation: 5}}
	m, err := NewMonitor(cfgs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Observe(5, 10); err == nil {
		t.Error("out-of-range sensor index accepted")
	}
}

// TestMonitorEndToEnd: a dirty bomb appears mid-stream; the network
// alarm raises shortly after, and the sensors nearest the source are
// the ones that triggered.
func TestMonitorEndToEnd(t *testing.T) {
	bounds := geometry.NewRect(geometry.V(0, 0), geometry.V(100, 100))
	sensors := sensor.Grid(bounds, 6, 6, sensor.DefaultEfficiency, 5)
	cfgs := make([]Config, len(sensors))
	for i := range cfgs {
		cfgs[i] = Config{Background: 5, MinElevation: 5}
	}
	m, err := NewMonitor(cfgs, 1)
	if err != nil {
		t.Fatal(err)
	}
	stream := rng.NewNamed(11, "detect/e2e")
	src := radiation.Source{Pos: geometry.V(47, 71), Strength: 50}

	// 5 quiet steps: no alarm expected (and none must stick).
	for step := 0; step < 5; step++ {
		for i, sen := range sensors {
			msr := sen.Measure(stream, nil, nil, step)
			if alarmed, _ := m.Observe(i, msr.CPM); alarmed {
				t.Fatalf("false alarm at quiet step %d", step)
			}
		}
	}
	// Some sensors may have settled on BackgroundOnly; restart the
	// monitoring epoch as an operator would.
	m.Reset()

	alarmStep := -1
	for step := 0; step < 10 && alarmStep < 0; step++ {
		for i, sen := range sensors {
			msr := sen.Measure(stream, []radiation.Source{src}, nil, step)
			if alarmed, _ := m.Observe(i, msr.CPM); alarmed {
				alarmStep = step
				break
			}
		}
	}
	if alarmStep < 0 {
		t.Fatal("50 µCi source never detected")
	}
	if alarmStep > 2 {
		t.Errorf("detection took %d steps, want ≤ 2", alarmStep)
	}
	// Let the remaining tests finish the epoch so the sensors adjacent
	// to the source also reach a decision.
	for step := alarmStep + 1; step < alarmStep+4; step++ {
		for i, sen := range sensors {
			msr := sen.Measure(stream, []radiation.Source{src}, nil, step)
			if _, err := m.Observe(i, msr.CPM); err != nil {
				t.Fatal(err)
			}
		}
	}
	// A 50 µCi source measurably elevates even distant sensors, so any
	// sensor may legitimately trigger — but the closest triggered one
	// must be near the source.
	nearest := 1e18
	for _, idx := range m.Triggered() {
		if d := sensors[idx].Pos.Dist(src.Pos); d < nearest {
			nearest = d
		}
	}
	if nearest > 30 {
		t.Errorf("nearest triggered sensor is %v away from the source", nearest)
	}
}
