// Package detect decides WHETHER radiation sources are present before
// the localizer is asked WHERE they are — the detection half of the
// "detection and localization" pipeline the paper's introduction
// motivates, using the sequential probability ratio test (SPRT) of the
// Chin/Rao line of work the paper builds on ([4], [5]).
//
// Each sensor runs a Poisson SPRT between
//
//	H0: λ = B           (background only)
//	H1: λ = B + δ       (a source elevates the rate by at least δ)
//
// accumulating the log-likelihood ratio of its readings until one of
// Wald's thresholds is crossed. A network-level Monitor raises the
// alarm when enough sensors decide H1.
package detect

import (
	"errors"
	"fmt"
	"math"
)

// Decision is the state of a sequential test.
type Decision int

// Decision values.
const (
	// Undecided: keep sampling.
	Undecided Decision = iota + 1
	// SourcePresent: H1 accepted.
	SourcePresent
	// BackgroundOnly: H0 accepted.
	BackgroundOnly
)

// String implements fmt.Stringer.
func (d Decision) String() string {
	switch d {
	case Undecided:
		return "undecided"
	case SourcePresent:
		return "source-present"
	case BackgroundOnly:
		return "background-only"
	default:
		return fmt.Sprintf("Decision(%d)", int(d))
	}
}

// Config parameterizes a Poisson SPRT.
type Config struct {
	// Background is the sensor's background rate B in CPM (> 0; a
	// zero background would make the test degenerate, so B is floored
	// at 0.1 CPM).
	Background float64
	// MinElevation is δ, the smallest source-induced rate increase the
	// test must detect (CPM, > 0).
	MinElevation float64
	// Alpha is the false-alarm probability bound (default 0.01).
	Alpha float64
	// Beta is the missed-detection probability bound (default 0.01).
	Beta float64
}

func (c Config) withDefaults() Config {
	if c.Alpha == 0 {
		c.Alpha = 0.01
	}
	if c.Beta == 0 {
		c.Beta = 0.01
	}
	if c.Background < 0.1 {
		c.Background = 0.1
	}
	return c
}

func (c Config) validate() error {
	if c.MinElevation <= 0 {
		return fmt.Errorf("detect: MinElevation = %v", c.MinElevation)
	}
	if c.Alpha <= 0 || c.Alpha >= 1 || c.Beta <= 0 || c.Beta >= 1 {
		return fmt.Errorf("detect: error bounds α=%v β=%v", c.Alpha, c.Beta)
	}
	return nil
}

// SPRT is one sensor's sequential test. Create with NewSPRT; feed
// readings with Observe.
type SPRT struct {
	cfg      Config
	logRatio float64 // ln((B+δ)/B), precomputed
	delta    float64
	upper    float64 // accept H1 at or above
	lower    float64 // accept H0 at or below
	llr      float64
	n        int
	decision Decision
}

// NewSPRT builds a sequential test.
func NewSPRT(cfg Config) (*SPRT, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &SPRT{
		cfg:      cfg,
		logRatio: math.Log((cfg.Background + cfg.MinElevation) / cfg.Background),
		delta:    cfg.MinElevation,
		upper:    math.Log((1 - cfg.Beta) / cfg.Alpha),
		lower:    math.Log(cfg.Beta / (1 - cfg.Alpha)),
		decision: Undecided,
	}, nil
}

// Observe folds one CPM reading into the test and returns the current
// decision. After a terminal decision further readings are ignored
// until Reset.
func (s *SPRT) Observe(cpm int) Decision {
	if s.decision != Undecided {
		return s.decision
	}
	if cpm < 0 {
		cpm = 0
	}
	// Poisson LLR: m·ln(λ1/λ0) − (λ1 − λ0).
	s.llr += float64(cpm)*s.logRatio - s.delta
	s.n++
	switch {
	case s.llr >= s.upper:
		s.decision = SourcePresent
	case s.llr <= s.lower:
		s.decision = BackgroundOnly
	}
	return s.decision
}

// Decision returns the current state without observing.
func (s *SPRT) Decision() Decision { return s.decision }

// Samples returns the number of readings consumed.
func (s *SPRT) Samples() int { return s.n }

// LLR returns the accumulated log-likelihood ratio (diagnostic).
func (s *SPRT) LLR() float64 { return s.llr }

// Reset returns the test to its initial state — used after a decision
// to keep monitoring.
func (s *SPRT) Reset() {
	s.llr = 0
	s.n = 0
	s.decision = Undecided
}

// ErrNoSensors is returned by NewMonitor without any sensor configs.
var ErrNoSensors = errors.New("detect: no sensors")

// Monitor fuses per-sensor SPRTs into a network-level alarm: the alarm
// raises when at least Quorum sensors have decided SourcePresent.
type Monitor struct {
	tests  []*SPRT
	quorum int
}

// NewMonitor builds one SPRT per sensor config. quorum ≤ 0 defaults
// to 1 (any sensor).
func NewMonitor(cfgs []Config, quorum int) (*Monitor, error) {
	if len(cfgs) == 0 {
		return nil, ErrNoSensors
	}
	if quorum <= 0 {
		quorum = 1
	}
	if quorum > len(cfgs) {
		return nil, fmt.Errorf("detect: quorum %d > %d sensors", quorum, len(cfgs))
	}
	m := &Monitor{quorum: quorum}
	for _, c := range cfgs {
		t, err := NewSPRT(c)
		if err != nil {
			return nil, err
		}
		m.tests = append(m.tests, t)
	}
	return m, nil
}

// Observe feeds sensor sensorIdx's reading and reports whether the
// network alarm is raised.
func (m *Monitor) Observe(sensorIdx, cpm int) (bool, error) {
	if sensorIdx < 0 || sensorIdx >= len(m.tests) {
		return false, fmt.Errorf("detect: sensor index %d out of [0,%d)", sensorIdx, len(m.tests))
	}
	m.tests[sensorIdx].Observe(cpm)
	return m.Alarmed(), nil
}

// Alarmed reports whether at least Quorum sensors currently decide
// SourcePresent.
func (m *Monitor) Alarmed() bool {
	n := 0
	for _, t := range m.tests {
		if t.Decision() == SourcePresent {
			n++
			if n >= m.quorum {
				return true
			}
		}
	}
	return false
}

// Triggered returns the indices of sensors that decided SourcePresent —
// a natural seed region for localization.
func (m *Monitor) Triggered() []int {
	var out []int
	for i, t := range m.tests {
		if t.Decision() == SourcePresent {
			out = append(out, i)
		}
	}
	return out
}

// Reset restarts every per-sensor test.
func (m *Monitor) Reset() {
	for _, t := range m.tests {
		t.Reset()
	}
}
