package render

import (
	"strings"
	"testing"

	"radloc/internal/core"
	"radloc/internal/geometry"
	"radloc/internal/scenario"
)

func particlesAt(p geometry.Vec, n int) []core.Particle {
	out := make([]core.Particle, n)
	for i := range out {
		out[i] = core.Particle{Pos: p, Strength: 10, Weight: 1}
	}
	return out
}

func TestASCIIBasics(t *testing.T) {
	sc := scenario.A(10, false)
	parts := particlesAt(geometry.V(30, 30), 100)
	ests := []core.Estimate{{Pos: geometry.V(70, 80), Strength: 10, Mass: 0.3}}

	out := ASCII(sc, parts, ests, ASCIIOptions{})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 30 {
		t.Fatalf("rows = %d, want 30", len(lines))
	}
	for i, l := range lines {
		if len(l) != 60 {
			t.Fatalf("row %d width = %d, want 60", i, len(l))
		}
	}
	if !strings.Contains(out, "O") {
		t.Error("sources not marked")
	}
	if !strings.Contains(out, "X") {
		t.Error("estimates not marked")
	}
	if !strings.Contains(out, "+") {
		t.Error("sensors not marked")
	}
	if !strings.Contains(out, "@") {
		t.Error("dense particle cell not at darkest shade")
	}
}

func TestASCIIOrientationYUp(t *testing.T) {
	// A particle cluster at the TOP of the area must appear in the
	// FIRST rendered line (y grows upward like the paper's plots).
	sc := scenario.A(10, false)
	sc.Sources = nil
	sc.Sensors = sc.Sensors[:1] // single sensor at (0,0) = bottom-left
	parts := particlesAt(geometry.V(50, 100), 50)
	out := ASCII(sc, parts, nil, ASCIIOptions{Cols: 20, Rows: 10})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if !strings.Contains(lines[0], "@") {
		t.Errorf("top cluster not in first line:\n%s", out)
	}
	if !strings.Contains(lines[len(lines)-1], "+") {
		t.Errorf("bottom-left sensor not in last line:\n%s", out)
	}
}

func TestASCIIOutOfBoundsIgnored(t *testing.T) {
	sc := scenario.A(10, false)
	parts := []core.Particle{{Pos: geometry.V(-50, -50)}, {Pos: geometry.V(500, 500)}}
	out := ASCII(sc, parts, nil, ASCIIOptions{Cols: 10, Rows: 5})
	if strings.ContainsAny(out, ".@#") {
		t.Errorf("out-of-bounds particles rendered:\n%s", out)
	}
}

func TestASCIIEmpty(t *testing.T) {
	sc := scenario.A(10, false)
	out := ASCII(sc, nil, nil, ASCIIOptions{Cols: 10, Rows: 5})
	if len(out) == 0 {
		t.Fatal("empty render")
	}
}

func TestSVGStructure(t *testing.T) {
	sc := scenario.A(10, true)
	parts := particlesAt(geometry.V(47, 71), 5)
	ests := []core.Estimate{{Pos: geometry.V(81, 42), Strength: 12, Mass: 0.2}}
	out := SVG(sc, parts, ests, SVGOptions{ShowParticles: true})

	for _, want := range []string{
		"<svg", "</svg>",
		"<polygon",          // the obstacle
		`fill="#cc0000"`,    // sources
		`stroke="#009900"`,  // sensors
		`stroke="#ff9900"`,  // estimate cross
		`fill-opacity`,      // particles
		"sensor 0", "S1 10", // titles
	} {
		if !strings.Contains(out, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	// 36 sensors → 36 rects (plus background rect).
	if n := strings.Count(out, "<rect"); n != 37 {
		t.Errorf("rect count = %d, want 37", n)
	}
	if n := strings.Count(out, "<circle"); n != 2+5 {
		t.Errorf("circle count = %d, want 7 (2 sources + 5 particles)", n)
	}
}

func TestSVGHidesParticlesByDefault(t *testing.T) {
	sc := scenario.A(10, false)
	parts := particlesAt(geometry.V(47, 71), 5)
	out := SVG(sc, parts, nil, SVGOptions{})
	if strings.Contains(out, "fill-opacity") {
		t.Error("particles rendered although ShowParticles=false")
	}
}

func TestSVGEscapesNames(t *testing.T) {
	sc := scenario.A(10, true)
	sc.Obstacles[0].Name = `<&">`
	out := SVG(sc, nil, nil, SVGOptions{})
	if strings.Contains(out, `<&">`) {
		t.Error("obstacle name not escaped")
	}
	if !strings.Contains(out, "&lt;&amp;&quot;&gt;") {
		t.Error("escaped name missing")
	}
}

func TestSVGAspectRatio(t *testing.T) {
	sc := scenario.A(10, false) // square bounds
	out := SVG(sc, nil, nil, SVGOptions{WidthPx: 400})
	if !strings.Contains(out, `width="400" height="400"`) {
		t.Errorf("square bounds should give square SVG: %s", out[:120])
	}
}
