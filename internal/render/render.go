// Package render draws scenarios, particle clouds and estimates as
// ASCII density maps (for terminals; Fig. 4-style snapshots) and SVG
// documents (for reports; Fig. 8-style layout plots). Pure stdlib.
package render

import (
	"fmt"
	"strings"

	"radloc/internal/core"
	"radloc/internal/geometry"
	"radloc/internal/scenario"
)

// ASCIIOptions control the terminal renderer.
type ASCIIOptions struct {
	// Cols and Rows set the character raster (defaults 60×30).
	Cols, Rows int
}

func (o ASCIIOptions) withDefaults() ASCIIOptions {
	if o.Cols <= 0 {
		o.Cols = 60
	}
	if o.Rows <= 0 {
		o.Rows = 30
	}
	return o
}

// ASCII renders the particle cloud of a scenario as a density map.
// Sources print as 'O', estimates as 'X', sensors as '+' (on empty
// cells); density uses " .:-=+*#%@".
func ASCII(sc scenario.Scenario, parts []core.Particle, ests []core.Estimate, opts ASCIIOptions) string {
	opts = opts.withDefaults()
	cols, rows := opts.Cols, opts.Rows

	toCell := func(p geometry.Vec) (int, int, bool) {
		if sc.Bounds.Width() <= 0 || sc.Bounds.Height() <= 0 {
			return 0, 0, false
		}
		cx := int((p.X - sc.Bounds.Min.X) / sc.Bounds.Width() * float64(cols-1))
		cy := int((p.Y - sc.Bounds.Min.Y) / sc.Bounds.Height() * float64(rows-1))
		if cx < 0 || cy < 0 || cx >= cols || cy >= rows {
			return 0, 0, false
		}
		return cx, cy, true
	}

	grid := make([]int, cols*rows)
	maxCount := 0
	for _, p := range parts {
		if cx, cy, ok := toCell(p.Pos); ok {
			grid[cy*cols+cx]++
			if grid[cy*cols+cx] > maxCount {
				maxCount = grid[cy*cols+cx]
			}
		}
	}

	shades := []byte(" .:-=+*#%@")
	canvas := make([][]byte, rows)
	for cy := range canvas {
		canvas[cy] = make([]byte, cols)
		for cx := 0; cx < cols; cx++ {
			n := grid[cy*cols+cx]
			idx := 0
			if maxCount > 0 && n > 0 {
				idx = 1 + n*(len(shades)-2)/maxCount
				if idx >= len(shades) {
					idx = len(shades) - 1
				}
			}
			canvas[cy][cx] = shades[idx]
		}
	}
	for _, s := range sc.Sensors {
		if cx, cy, ok := toCell(s.Pos); ok && canvas[cy][cx] == ' ' {
			canvas[cy][cx] = '+'
		}
	}
	for _, e := range ests {
		if cx, cy, ok := toCell(e.Pos); ok {
			canvas[cy][cx] = 'X'
		}
	}
	for _, s := range sc.Sources {
		if cx, cy, ok := toCell(s.Pos); ok {
			canvas[cy][cx] = 'O'
		}
	}

	var b strings.Builder
	b.Grow((cols + 1) * rows)
	for cy := rows - 1; cy >= 0; cy-- {
		b.Write(canvas[cy])
		b.WriteByte('\n')
	}
	return b.String()
}

// SVGOptions control the SVG renderer.
type SVGOptions struct {
	// WidthPx is the pixel width of the document (default 640); height
	// follows the bounds' aspect ratio.
	WidthPx int
	// ShowParticles toggles particle dots.
	ShowParticles bool
}

func (o SVGOptions) withDefaults() SVGOptions {
	if o.WidthPx <= 0 {
		o.WidthPx = 640
	}
	return o
}

// SVG renders the scenario layout (sensors, sources, obstacles) plus
// optional particles and estimates into a standalone SVG document.
func SVG(sc scenario.Scenario, parts []core.Particle, ests []core.Estimate, opts SVGOptions) string {
	opts = opts.withDefaults()
	w := float64(opts.WidthPx)
	scale := w / sc.Bounds.Width()
	h := sc.Bounds.Height() * scale

	// SVG y grows downward; flip so the plot matches the paper's axes.
	tx := func(p geometry.Vec) (float64, float64) {
		return (p.X - sc.Bounds.Min.X) * scale, h - (p.Y-sc.Bounds.Min.Y)*scale
	}

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" viewBox="0 0 %.0f %.0f">`+"\n", w, h, w, h)
	fmt.Fprintf(&b, `<rect width="%.0f" height="%.0f" fill="white" stroke="black"/>`+"\n", w, h)

	for _, o := range sc.Obstacles {
		var pts []string
		for _, v := range o.Shape.Vertices() {
			x, y := tx(v)
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", x, y))
		}
		fmt.Fprintf(&b, `<polygon points="%s" fill="#bbbbbb" stroke="#555555"><title>%s µ=%.4g</title></polygon>`+"\n",
			strings.Join(pts, " "), svgEscape(o.Name), o.Mu)
	}
	if opts.ShowParticles {
		for _, p := range parts {
			x, y := tx(p.Pos)
			fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="1" fill="#3366cc" fill-opacity="0.35"/>`+"\n", x, y)
		}
	}
	for _, s := range sc.Sensors {
		x, y := tx(s.Pos)
		fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="5" height="5" fill="none" stroke="#009900"><title>sensor %d</title></rect>`+"\n", x-2.5, y-2.5, s.ID)
	}
	for i, s := range sc.Sources {
		x, y := tx(s.Pos)
		fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="5" fill="#cc0000"><title>S%d %.4g µCi</title></circle>`+"\n", x, y, i+1, s.Strength)
	}
	for _, e := range ests {
		x, y := tx(e.Pos)
		fmt.Fprintf(&b, `<path d="M %.1f %.1f l 8 8 m -8 0 l 8 -8" stroke="#ff9900" stroke-width="2" fill="none"><title>est %.4g µCi (mass %.3f)</title></path>`+"\n",
			x-4, y-4, e.Strength, e.Mass)
	}
	b.WriteString("</svg>\n")
	return b.String()
}

func svgEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
