package radiation

import (
	"math"
	"testing"
	"testing/quick"

	"radloc/internal/geometry"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestFreeSpaceIntensity(t *testing.T) {
	src := Source{Pos: geometry.V(0, 0), Strength: 100}
	tests := []struct {
		name string
		x    geometry.Vec
		want float64
	}{
		{"at-source", geometry.V(0, 0), 100},
		{"unit-away", geometry.V(1, 0), 50},
		{"3-4-5", geometry.V(3, 4), 100.0 / 26},
		{"far", geometry.V(100, 0), 100.0 / 10001},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := FreeSpaceIntensity(tt.x, src); !almostEq(got, tt.want, 1e-12) {
				t.Errorf("got %v, want %v", got, tt.want)
			}
		})
	}
}

func TestShieldingFactor(t *testing.T) {
	if got := ShieldingFactor(0.0693, 10); !almostEq(got, 0.5, 1e-3) {
		t.Errorf("paper µ over 10 units = %v, want ≈0.5", got)
	}
	if got := ShieldingFactor(0, 5); got != 1 {
		t.Errorf("µ=0: %v, want 1", got)
	}
	if got := ShieldingFactor(0.5, 0); got != 1 {
		t.Errorf("l=0: %v, want 1", got)
	}
	if got := ShieldingFactor(-1, 5); got != 1 {
		t.Errorf("µ<0 clamps to no shielding, got %v", got)
	}
}

func wall(x0, x1 float64) Obstacle {
	return Obstacle{
		Shape: geometry.NewRect(geometry.V(x0, -100), geometry.V(x1, 100)).Polygon(),
		Mu:    PaperObstacle.MustMu(),
		Name:  "wall",
	}
}

func TestIntensityThroughWall(t *testing.T) {
	src := Source{Pos: geometry.V(0, 0), Strength: 100}
	x := geometry.V(30, 0)
	free := FreeSpaceIntensity(x, src)

	// A 10-unit wall of the paper's material (µ=0.0693) attenuates by
	// e^(−0.693) ≈ one half.
	half := math.Exp(-PaperObstacle.MustMu() * 10)
	got := Intensity(x, src, []Obstacle{wall(10, 20)})
	if !almostEq(got, free*half, 1e-6*free) {
		t.Errorf("one wall: got %v, want %v", got, free*half)
	}
	if !almostEq(half, 0.5, 1e-3) {
		t.Errorf("halving factor = %v, want ≈0.5", half)
	}

	// Two walls of 10 units quarter it.
	got = Intensity(x, src, []Obstacle{wall(5, 15), wall(18, 28)})
	if !almostEq(got, free*half*half, 1e-6*free) {
		t.Errorf("two walls: got %v, want %v", got, free*half*half)
	}

	// An obstacle not on the ray changes nothing.
	off := Obstacle{
		Shape: geometry.NewRect(geometry.V(10, 10), geometry.V(20, 20)).Polygon(),
		Mu:    PaperObstacle.MustMu(),
	}
	got = Intensity(x, src, []Obstacle{off})
	if !almostEq(got, free, 1e-12) {
		t.Errorf("off-ray obstacle altered intensity: %v vs %v", got, free)
	}

	// µ = 0 obstacles are transparent.
	clear := wall(10, 20)
	clear.Mu = 0
	got = Intensity(x, src, []Obstacle{clear})
	if !almostEq(got, free, 1e-12) {
		t.Errorf("transparent obstacle altered intensity")
	}
}

func TestIntensityNoObstacles(t *testing.T) {
	src := Source{Pos: geometry.V(5, 5), Strength: 10}
	x := geometry.V(8, 9)
	if got, want := Intensity(x, src, nil), FreeSpaceIntensity(x, src); !almostEq(got, want, 1e-15) {
		t.Errorf("nil obstacles: %v, want %v", got, want)
	}
}

func TestPathThickness(t *testing.T) {
	obs := []Obstacle{wall(10, 12), wall(20, 25)}
	cs := PathThickness(geometry.V(0, 0), geometry.V(30, 0), obs)
	if len(cs) != 2 {
		t.Fatalf("crossings = %d, want 2", len(cs))
	}
	if cs[0].Obstacle != 0 || !almostEq(cs[0].Thickness, 2, 1e-9) {
		t.Errorf("crossing 0 = %+v", cs[0])
	}
	if cs[1].Obstacle != 1 || !almostEq(cs[1].Thickness, 5, 1e-9) {
		t.Errorf("crossing 1 = %+v", cs[1])
	}
	if got := PathThickness(geometry.V(0, 150), geometry.V(30, 150), obs); got != nil {
		t.Errorf("clear path crossings = %v, want none", got)
	}
}

func TestExpectedCPM(t *testing.T) {
	src := Source{Pos: geometry.V(0, 0), Strength: 10}
	pos := geometry.V(10, 0)
	// By hand: 2.22e6 * 1e-4 * 10/101 + 5.
	want := CPMPerMicroCurie*1e-4*10.0/101 + 5
	got := ExpectedCPM(pos, 1e-4, 5, []Source{src}, nil)
	if !almostEq(got, want, 1e-9) {
		t.Errorf("ExpectedCPM = %v, want %v", got, want)
	}

	// Superposition: two sources add.
	src2 := Source{Pos: geometry.V(20, 0), Strength: 10}
	got = ExpectedCPM(pos, 1e-4, 5, []Source{src, src2}, nil)
	want = CPMPerMicroCurie*1e-4*(10.0/101+10.0/101) + 5
	if !almostEq(got, want, 1e-9) {
		t.Errorf("two-source ExpectedCPM = %v, want %v", got, want)
	}

	// No sources: background only.
	if got := ExpectedCPM(pos, 1e-4, 7, nil, nil); got != 7 {
		t.Errorf("background-only = %v, want 7", got)
	}
}

func TestExpectedCPMSingleMatchesExpectedCPMFreeSpace(t *testing.T) {
	f := func(sx, sy, px, py, str uint16) bool {
		src := Source{
			Pos:      geometry.V(float64(sx%200), float64(sy%200)),
			Strength: 1 + float64(str%1000),
		}
		pos := geometry.V(float64(px%200), float64(py%200))
		a := ExpectedCPMSingle(pos, 1e-4, 5, src)
		b := ExpectedCPM(pos, 1e-4, 5, []Source{src}, nil)
		return almostEq(a, b, 1e-9*(1+a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: shielded intensity never exceeds free-space intensity and
// is always non-negative.
func TestIntensityBoundedProperty(t *testing.T) {
	obs := []Obstacle{wall(10, 20), {
		Shape: geometry.NewRect(geometry.V(-50, 30), geometry.V(50, 40)).Polygon(),
		Mu:    Concrete.MustMu(),
	}}
	f := func(sx, sy, px, py, str uint16) bool {
		src := Source{
			Pos:      geometry.V(float64(sx%200)-100, float64(sy%200)-100),
			Strength: 1 + float64(str%1000),
		}
		pos := geometry.V(float64(px%200)-100, float64(py%200)-100)
		shielded := Intensity(pos, src, obs)
		free := FreeSpaceIntensity(pos, src)
		return shielded >= 0 && shielded <= free+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMaterials(t *testing.T) {
	// The paper cites 1 cm lead ≈ 6 cm concrete at 1 MeV.
	ratio := Lead.MustMu() / Concrete.MustMu()
	if ratio < 4.5 || ratio > 6.5 {
		t.Errorf("lead/concrete µ ratio = %v, want ≈5–6", ratio)
	}
	if _, err := Material("unobtainium").Mu(); err == nil {
		t.Error("unknown material should error")
	}
	ht, err := PaperObstacle.HalvingThickness()
	if err != nil || !almostEq(ht, 10, 0.01) {
		t.Errorf("paper obstacle halving thickness = %v (%v), want 10", ht, err)
	}
	if len(Materials()) < 7 {
		t.Errorf("Materials() = %v", Materials())
	}
	defer func() {
		if recover() == nil {
			t.Error("MustMu on unknown material should panic")
		}
	}()
	Material("nope").MustMu()
}
