// Package radiation implements the gamma-radiation propagation model of
// Chin et al. (ICDCS 2011), Section III:
//
//   - Eq. (1) free-space intensity  I_FS(x, A) = A_str / (1 + |x − A_pos|²)
//   - Eq. (2) shielding             I_S(l, A)  = A_str · e^(−µl)
//   - Eq. (3) combined model through a set of obstacles
//   - Eq. (4) expected sensor reading in counts per minute (CPM)
//
// Source strengths are in micro-Curies (µCi); distances in abstract
// length units (cm in the paper); sensor readings in CPM.
package radiation

import (
	"fmt"

	"radloc/internal/geometry"
)

// CPMPerMicroCurie is the conversion factor from µCi to CPM used in
// Eq. (4): 1 µCi = 2.22×10⁶ disintegrations per minute.
const CPMPerMicroCurie = 2.22e6

// Source is a static gamma point source A = ⟨A^x, A^y, A^str⟩.
type Source struct {
	Pos      geometry.Vec
	Strength float64 // µCi, positive
}

// String implements fmt.Stringer.
func (s Source) String() string {
	return fmt.Sprintf("source %.4g µCi at %v", s.Strength, s.Pos)
}

// Obstacle is a homogeneous shielding body: a polygon footprint with a
// linear attenuation coefficient µ (per length unit).
type Obstacle struct {
	Shape geometry.Polygon
	Mu    float64 // attenuation coefficient, ≥ 0
	Name  string  // optional label for reports
}

// FreeSpaceIntensity evaluates Eq. (1): the unshielded intensity of src
// observed at x, in µCi-equivalent units (multiply by CPMPerMicroCurie ×
// efficiency to get CPM).
func FreeSpaceIntensity(x geometry.Vec, src Source) float64 {
	return src.Strength / (1 + x.Dist2(src.Pos))
}

// ShieldingFactor returns e^(−µl), the fraction of gamma rays that
// survive thickness l of material with attenuation coefficient mu
// (Eq. 2's attenuation term).
func ShieldingFactor(mu, l float64) float64 {
	if mu <= 0 || l <= 0 {
		return 1
	}
	return exp(-mu * l)
}

// Intensity evaluates Eq. (3): the intensity of src at x attenuated by
// every obstacle the ray x→src crosses.
func Intensity(x geometry.Vec, src Source, obstacles []Obstacle) float64 {
	base := FreeSpaceIntensity(x, src)
	if len(obstacles) == 0 || base == 0 {
		return base
	}
	ray := geometry.Seg(x, src.Pos)
	var exponent float64
	for i := range obstacles {
		ob := &obstacles[i]
		if ob.Mu <= 0 {
			continue
		}
		if l := ob.Shape.ChordLength(ray); l > 0 {
			exponent += ob.Mu * l
		}
	}
	if exponent == 0 {
		return base
	}
	return base * exp(-exponent)
}

// PathThickness returns, for diagnostics, the total obstacle thickness
// along the ray x→p weighted per obstacle: the slice holds (obstacle
// index, thickness) pairs for obstacles actually crossed.
func PathThickness(x, p geometry.Vec, obstacles []Obstacle) []Crossing {
	ray := geometry.Seg(x, p)
	var out []Crossing
	for i := range obstacles {
		if l := obstacles[i].Shape.ChordLength(ray); l > 0 {
			out = append(out, Crossing{Obstacle: i, Thickness: l})
		}
	}
	return out
}

// Crossing records that a ray traversed Thickness length units of
// obstacle number Obstacle.
type Crossing struct {
	Obstacle  int
	Thickness float64
}

// ExpectedCPM evaluates Eq. (4): the expected reading of a sensor at
// pos with counting efficiency eff and background rate background
// (CPM), given all sources and obstacles:
//
//	I_i = 2.22×10⁶ · E_i · Σ_j I(S_i, A_j) + B_i
func ExpectedCPM(pos geometry.Vec, eff, background float64, sources []Source, obstacles []Obstacle) float64 {
	var sum float64
	for _, src := range sources {
		sum += Intensity(pos, src, obstacles)
	}
	return CPMPerMicroCurie*eff*sum + background
}

// ExpectedCPMSingle is ExpectedCPM for a single hypothesized source; it
// is the likelihood model the particle filter evaluates for each
// particle (obstacle-agnostic: the filter assumes free space).
func ExpectedCPMSingle(pos geometry.Vec, eff, background float64, src Source) float64 {
	return CPMPerMicroCurie*eff*FreeSpaceIntensity(pos, src) + background
}
