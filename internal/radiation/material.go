package radiation

import (
	"fmt"
	"math"
	"sort"
)

// exp is a local alias so the hot path stays readable.
func exp(x float64) float64 { return math.Exp(x) }

// Material identifies a shielding material with a published linear
// attenuation coefficient for 1 MeV gamma rays (Hubbell, NSRDS-NBS 29).
type Material string

// Supported materials. Coefficients are per cm at 1 MeV photon energy.
const (
	Lead     Material = "lead"
	Steel    Material = "steel"
	Concrete Material = "concrete"
	Water    Material = "water"
	Brick    Material = "brick"
	Wood     Material = "wood"
	Air      Material = "air"
	// PaperObstacle is the synthetic material used in the paper's
	// Scenario A: µ = 0.0693, i.e. intensity halves every 10 length
	// units ("selected such that the obstacle does not completely block
	// the radiation").
	PaperObstacle Material = "paper-obstacle"
)

// attenuation holds linear attenuation coefficients µ (cm⁻¹) at 1 MeV.
// Values derived from NSRDS-NBS 29 mass attenuation coefficients times
// nominal densities.
var attenuation = map[Material]float64{
	Lead:          0.797,   // µ/ρ ≈ 0.0703 cm²/g × 11.34 g/cm³
	Steel:         0.468,   // 0.0595 × 7.86
	Concrete:      0.149,   // 0.0637 × 2.35 — ≈ lead/6, matching the paper's remark
	Water:         0.0707,  // 0.0707 × 1.00
	Brick:         0.114,   // 0.0635 × 1.8
	Wood:          0.0386,  // 0.0643 × 0.6
	Air:           8.62e-5, // 0.0636 × 1.205e-3
	PaperObstacle: 0.0693,  // ln 2 / 10
}

// Mu returns the linear attenuation coefficient of m.
func (m Material) Mu() (float64, error) {
	mu, ok := attenuation[m]
	if !ok {
		return 0, fmt.Errorf("radiation: unknown material %q", m)
	}
	return mu, nil
}

// MustMu is Mu for statically-known materials; it panics on unknown m.
func (m Material) MustMu() float64 {
	mu, err := m.Mu()
	if err != nil {
		panic(err)
	}
	return mu
}

// Materials returns the supported material names, sorted.
func Materials() []Material {
	out := make([]Material, 0, len(attenuation))
	for m := range attenuation {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// HalvingThickness returns the thickness of m that halves gamma
// intensity: ln 2 / µ.
func (m Material) HalvingThickness() (float64, error) {
	mu, err := m.Mu()
	if err != nil {
		return 0, err
	}
	return math.Ln2 / mu, nil
}
