package geometry

import (
	"math"
	"sort"
)

// Segment is the closed line segment from A to B.
type Segment struct {
	A Vec
	B Vec
}

// Seg is shorthand for Segment{A: a, B: b}.
func Seg(a, b Vec) Segment { return Segment{A: a, B: b} }

// Length returns the Euclidean length of s.
func (s Segment) Length() float64 { return s.A.Dist(s.B) }

// At returns the point A + t·(B-A); t=0 is A and t=1 is B.
func (s Segment) At(t float64) Vec { return s.A.Lerp(s.B, t) }

// Midpoint returns the midpoint of s.
func (s Segment) Midpoint() Vec { return s.At(0.5) }

// ClosestParam returns the parameter t in [0,1] of the point on s
// closest to p.
func (s Segment) ClosestParam(p Vec) float64 {
	d := s.B.Sub(s.A)
	n2 := d.Norm2()
	if n2 < Eps*Eps {
		return 0
	}
	t := p.Sub(s.A).Dot(d) / n2
	return math.Max(0, math.Min(1, t))
}

// DistTo returns the distance from p to the nearest point of s.
func (s Segment) DistTo(p Vec) float64 {
	return p.Dist(s.At(s.ClosestParam(p)))
}

// Intersect computes the intersection of segments s and o.
//
// It returns the parameter t along s (0 at s.A, 1 at s.B) of the
// intersection point and ok=true when the segments properly intersect or
// touch. Collinear overlapping segments report ok=true with t of the
// overlap start nearest s.A.
func (s Segment) Intersect(o Segment) (t float64, ok bool) {
	r := s.B.Sub(s.A)
	d := o.B.Sub(o.A)
	denom := r.Cross(d)
	ao := o.A.Sub(s.A)
	if math.Abs(denom) < Eps {
		// Parallel. Overlap only if collinear.
		if math.Abs(ao.Cross(r)) > Eps {
			return 0, false
		}
		r2 := r.Norm2()
		if r2 < Eps*Eps {
			// s is a point.
			if o.DistTo(s.A) <= Eps {
				return 0, true
			}
			return 0, false
		}
		t0 := ao.Dot(r) / r2
		t1 := o.B.Sub(s.A).Dot(r) / r2
		lo, hi := math.Min(t0, t1), math.Max(t0, t1)
		if hi < -Eps || lo > 1+Eps {
			return 0, false
		}
		return math.Max(0, lo), true
	}
	t = ao.Cross(d) / denom
	u := ao.Cross(r) / denom
	if t < -Eps || t > 1+Eps || u < -Eps || u > 1+Eps {
		return 0, false
	}
	return math.Max(0, math.Min(1, t)), true
}

// clipParams returns the sorted parameters along s at which s crosses
// the boundary segments in edges, always including endpoints 0 and 1.
// Used by polygon chord computation.
func (s Segment) clipParams(edges []Segment) []float64 {
	ts := make([]float64, 0, len(edges)+2)
	ts = append(ts, 0, 1)
	for _, e := range edges {
		if t, ok := s.Intersect(e); ok {
			ts = append(ts, t)
		}
	}
	sort.Float64s(ts)
	return ts
}
