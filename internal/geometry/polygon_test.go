package geometry

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func square(size float64) Polygon {
	return MustPolygon([]Vec{
		V(0, 0), V(size, 0), V(size, size), V(0, size),
	})
}

// uShape builds the paper's U-shaped obstacle: an open-top channel.
// Outer footprint [0,30]×[0,20], wall thickness th.
func uShape(th float64) Polygon {
	return MustPolygon([]Vec{
		V(0, 0), V(30, 0), V(30, 20), V(30-th, 20),
		V(30-th, th), V(th, th), V(th, 20), V(0, 20),
	})
}

func TestNewPolygonErrors(t *testing.T) {
	if _, err := NewPolygon([]Vec{V(0, 0), V(1, 1)}); !errors.Is(err, ErrDegeneratePolygon) {
		t.Errorf("two-vertex ring: err = %v, want ErrDegeneratePolygon", err)
	}
	if _, err := NewPolygon([]Vec{V(0, 0), V(1, 1), V(2, 2)}); !errors.Is(err, ErrDegeneratePolygon) {
		t.Errorf("collinear ring: err = %v, want ErrDegeneratePolygon", err)
	}
}

func TestPolygonOrientationNormalized(t *testing.T) {
	cw := MustPolygon([]Vec{V(0, 0), V(0, 1), V(1, 1), V(1, 0)})
	if got := signedArea(cw.verts); got <= 0 {
		t.Errorf("clockwise input not normalized: signed area %v", got)
	}
}

func TestPolygonAreaPerimeterCentroid(t *testing.T) {
	sq := square(10)
	if got := sq.Area(); !almostEq(got, 100, 1e-9) {
		t.Errorf("Area = %v, want 100", got)
	}
	if got := sq.Perimeter(); !almostEq(got, 40, 1e-9) {
		t.Errorf("Perimeter = %v, want 40", got)
	}
	if got := sq.Centroid(); !got.Eq(V(5, 5)) {
		t.Errorf("Centroid = %v, want (5,5)", got)
	}

	tri := MustPolygon([]Vec{V(0, 0), V(6, 0), V(0, 6)})
	if got := tri.Area(); !almostEq(got, 18, 1e-9) {
		t.Errorf("triangle Area = %v, want 18", got)
	}
	if got := tri.Centroid(); !got.Eq(V(2, 2)) {
		t.Errorf("triangle Centroid = %v, want (2,2)", got)
	}
}

func TestPolygonContains(t *testing.T) {
	sq := square(10)
	tests := []struct {
		name string
		p    Vec
		want bool
	}{
		{"center", V(5, 5), true},
		{"outside", V(11, 5), false},
		{"far", V(-3, -3), false},
		{"on-edge", V(10, 5), true},
		{"on-vertex", V(0, 0), true},
		{"just-inside", V(9.999, 9.999), true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := sq.Contains(tt.p); got != tt.want {
				t.Errorf("Contains(%v) = %v, want %v", tt.p, got, tt.want)
			}
		})
	}
}

func TestPolygonContainsConcave(t *testing.T) {
	u := uShape(2)
	tests := []struct {
		name string
		p    Vec
		want bool
	}{
		{"left-wall", V(1, 10), true},
		{"right-wall", V(29, 10), true},
		{"base", V(15, 1), true},
		{"channel-interior", V(15, 10), false}, // inside the notch, not the material
		{"above", V(15, 25), false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := u.Contains(tt.p); got != tt.want {
				t.Errorf("Contains(%v) = %v, want %v", tt.p, got, tt.want)
			}
		})
	}
}

func TestChordLengthSquare(t *testing.T) {
	sq := square(10)
	tests := []struct {
		name string
		s    Segment
		want float64
	}{
		{"through-middle", Seg(V(-5, 5), V(15, 5)), 10},
		{"diagonal", Seg(V(-1, -1), V(11, 11)), 10 * math.Sqrt2},
		{"miss", Seg(V(-5, 20), V(15, 20)), 0},
		{"inside-only", Seg(V(2, 2), V(8, 2)), 6},
		{"start-inside", Seg(V(5, 5), V(25, 5)), 5},
		{"clip-corner", Seg(V(8, 11), V(11, 8)), math.Sqrt2},
		{"touch-vertex-only", Seg(V(9, 11), V(11, 9)), 0},
		{"along-edge", Seg(V(0, 0), V(10, 0)), 10}, // boundary is material
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := sq.ChordLength(tt.s); !almostEq(got, tt.want, 1e-6) {
				t.Errorf("ChordLength = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestChordLengthConcaveMultipleCrossings(t *testing.T) {
	u := uShape(2)
	// Horizontal ray across both walls at mid height: passes through two
	// 2-unit thick walls = 4 units of material.
	got := u.ChordLength(Seg(V(-10, 10), V(40, 10)))
	if !almostEq(got, 4, 1e-6) {
		t.Errorf("ChordLength across both walls = %v, want 4", got)
	}
	// Ray through the base only.
	got = u.ChordLength(Seg(V(15, -5), V(15, 1.5)))
	if !almostEq(got, 1.5, 1e-6) {
		t.Errorf("ChordLength into base = %v, want 1.5", got)
	}
	// Ray fully within the notch: zero material.
	got = u.ChordLength(Seg(V(5, 10), V(25, 10)))
	if !almostEq(got, 0-0, 1e-6) && got != 0 {
		t.Errorf("ChordLength in notch = %v, want 0", got)
	}
}

func TestIntersectsSegment(t *testing.T) {
	sq := square(10)
	if !sq.IntersectsSegment(Seg(V(-5, 5), V(5, 5))) {
		t.Error("entering segment should intersect")
	}
	if !sq.IntersectsSegment(Seg(V(2, 2), V(3, 3))) {
		t.Error("fully-inside segment should intersect")
	}
	if sq.IntersectsSegment(Seg(V(-5, -5), V(-1, -1))) {
		t.Error("outside segment should not intersect")
	}
}

func TestPolygonVerticesCopied(t *testing.T) {
	ring := []Vec{V(0, 0), V(4, 0), V(4, 4), V(0, 4)}
	p := MustPolygon(ring)
	ring[0] = V(99, 99)
	if p.Vertices()[0].Eq(V(99, 99)) {
		t.Error("polygon shares caller's backing array")
	}
	vs := p.Vertices()
	vs[1] = V(-1, -1)
	if p.Vertices()[1].Eq(V(-1, -1)) {
		t.Error("Vertices() exposes internal slice")
	}
}

// Property: a segment's chord length through any polygon never exceeds
// the segment length (within tolerance) and is never negative.
func TestChordLengthBoundedProperty(t *testing.T) {
	u := uShape(2)
	sq := square(10)
	f := func(ax, ay, bx, by float64) bool {
		if !finiteAll(ax, ay, bx, by) {
			return true
		}
		s := Seg(clampVec(V(ax, ay)), clampVec(V(bx, by)))
		for _, p := range []Polygon{u, sq} {
			c := p.ChordLength(s)
			if c < 0 || c > s.Length()+1e-6 || math.IsNaN(c) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: translating both polygon and segment leaves the chord length
// unchanged.
func TestChordLengthTranslationInvariantProperty(t *testing.T) {
	base := []Vec{V(0, 0), V(10, 0), V(10, 10), V(0, 10)}
	f := func(ax, ay, bx, by, tx, ty float64) bool {
		if !finiteAll(ax, ay, bx, by, tx, ty) {
			return true
		}
		a, b := clampSmall(V(ax, ay)), clampSmall(V(bx, by))
		d := clampSmall(V(tx, ty))
		p := MustPolygon(base)
		moved := make([]Vec, len(base))
		for i, v := range base {
			moved[i] = v.Add(d)
		}
		q := MustPolygon(moved)
		c1 := p.ChordLength(Seg(a, b))
		c2 := q.ChordLength(Seg(a.Add(d), b.Add(d)))
		return almostEq(c1, c2, 1e-6*(1+c1))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func clampSmall(v Vec) Vec {
	c := func(x float64) float64 { return math.Mod(x, 100) }
	return V(c(v.X), c(v.Y))
}
