package geometry

import (
	"errors"
	"fmt"
	"math"
)

// ErrDegeneratePolygon is returned by NewPolygon for rings with fewer
// than three vertices or near-zero area.
var ErrDegeneratePolygon = errors.New("geometry: degenerate polygon")

// Polygon is a simple (non self-intersecting) polygon given by its
// vertex ring. Orientation may be either direction; constructors
// normalize to counter-clockwise.
type Polygon struct {
	verts []Vec
	bbox  Rect
}

// NewPolygon builds a polygon from the given vertex ring. The ring is
// copied. It returns ErrDegeneratePolygon when the ring has fewer than
// three vertices or encloses (near) zero area.
func NewPolygon(verts []Vec) (Polygon, error) {
	if len(verts) < 3 {
		return Polygon{}, fmt.Errorf("%w: %d vertices", ErrDegeneratePolygon, len(verts))
	}
	vs := make([]Vec, len(verts))
	copy(vs, verts)
	if signedArea(vs) < 0 {
		reverse(vs)
	}
	p := Polygon{verts: vs, bbox: boundsOf(vs)}
	if p.Area() < Eps {
		return Polygon{}, fmt.Errorf("%w: zero area", ErrDegeneratePolygon)
	}
	return p, nil
}

// MustPolygon is like NewPolygon but panics on error. Intended for
// statically-known scenario layouts.
func MustPolygon(verts []Vec) Polygon {
	p, err := NewPolygon(verts)
	if err != nil {
		panic(err)
	}
	return p
}

// Vertices returns a copy of the polygon's vertex ring
// (counter-clockwise).
func (p Polygon) Vertices() []Vec {
	vs := make([]Vec, len(p.verts))
	copy(vs, p.verts)
	return vs
}

// NumVertices returns the vertex count.
func (p Polygon) NumVertices() int { return len(p.verts) }

// Bounds returns the axis-aligned bounding box of p.
func (p Polygon) Bounds() Rect { return p.bbox }

// Area returns the enclosed area of p.
func (p Polygon) Area() float64 { return math.Abs(signedArea(p.verts)) }

// Perimeter returns the total edge length of p.
func (p Polygon) Perimeter() float64 {
	var sum float64
	for i := range p.verts {
		sum += p.verts[i].Dist(p.verts[(i+1)%len(p.verts)])
	}
	return sum
}

// Centroid returns the area centroid of p.
func (p Polygon) Centroid() Vec {
	var cx, cy, a float64
	n := len(p.verts)
	for i := 0; i < n; i++ {
		v, w := p.verts[i], p.verts[(i+1)%n]
		cr := v.Cross(w)
		a += cr
		cx += (v.X + w.X) * cr
		cy += (v.Y + w.Y) * cr
	}
	a /= 2
	if math.Abs(a) < Eps {
		return p.verts[0]
	}
	return Vec{X: cx / (6 * a), Y: cy / (6 * a)}
}

// Edges returns the edge segments of p in ring order.
func (p Polygon) Edges() []Segment {
	n := len(p.verts)
	es := make([]Segment, n)
	for i := 0; i < n; i++ {
		es[i] = Segment{A: p.verts[i], B: p.verts[(i+1)%n]}
	}
	return es
}

// Contains reports whether q lies inside p or on its boundary, using
// the even-odd ray-crossing rule with an explicit boundary check.
func (p Polygon) Contains(q Vec) bool {
	if !p.bbox.Contains(q) {
		return false
	}
	n := len(p.verts)
	for i := 0; i < n; i++ {
		if (Segment{A: p.verts[i], B: p.verts[(i+1)%n]}).DistTo(q) <= Eps {
			return true
		}
	}
	inside := false
	for i, j := 0, n-1; i < n; j, i = i, i+1 {
		vi, vj := p.verts[i], p.verts[j]
		if (vi.Y > q.Y) != (vj.Y > q.Y) {
			xCross := (vj.X-vi.X)*(q.Y-vi.Y)/(vj.Y-vi.Y) + vi.X
			if q.X < xCross {
				inside = !inside
			}
		}
	}
	return inside
}

// ChordLength returns the total length of s that lies inside p: the
// thickness of obstacle material a ray travelling along s traverses.
//
// The segment is cut at every boundary crossing and each resulting piece
// is classified by its midpoint, so the result is correct for concave
// polygons (e.g. the paper's U-shaped obstacle) where a single ray can
// enter and exit several times.
func (p Polygon) ChordLength(s Segment) float64 {
	if s.Length() < Eps {
		if p.Contains(s.A) {
			return 0
		}
		return 0
	}
	if !p.bbox.IntersectsSegment(s) {
		return 0
	}
	ts := s.clipParams(p.Edges())
	var total float64
	for i := 0; i+1 < len(ts); i++ {
		t0, t1 := ts[i], ts[i+1]
		if t1-t0 < Eps {
			continue
		}
		if p.Contains(s.At((t0 + t1) / 2)) {
			total += (t1 - t0) * s.Length()
		}
	}
	return total
}

// IntersectsSegment reports whether any part of s touches p (boundary
// or interior).
func (p Polygon) IntersectsSegment(s Segment) bool {
	if !p.bbox.IntersectsSegment(s) {
		return false
	}
	if p.Contains(s.A) || p.Contains(s.B) {
		return true
	}
	for _, e := range p.Edges() {
		if _, ok := s.Intersect(e); ok {
			return true
		}
	}
	return false
}

func signedArea(vs []Vec) float64 {
	var a float64
	n := len(vs)
	for i := 0; i < n; i++ {
		a += vs[i].Cross(vs[(i+1)%n])
	}
	return a / 2
}

func reverse(vs []Vec) {
	for i, j := 0, len(vs)-1; i < j; i, j = i+1, j-1 {
		vs[i], vs[j] = vs[j], vs[i]
	}
}

func boundsOf(vs []Vec) Rect {
	r := Rect{Min: vs[0], Max: vs[0]}
	for _, v := range vs[1:] {
		r.Min.X = math.Min(r.Min.X, v.X)
		r.Min.Y = math.Min(r.Min.Y, v.Y)
		r.Max.X = math.Max(r.Max.X, v.X)
		r.Max.Y = math.Max(r.Max.Y, v.Y)
	}
	return r
}
