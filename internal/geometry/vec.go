// Package geometry provides the 2-D primitives used by the radiation
// simulator: vectors, segments, rectangles, and polygons, together with
// the intersection routines needed to compute how much obstacle material
// a gamma ray traverses between a source and a sensor.
//
// Coordinates are in abstract length units (the paper uses cm). All types
// are plain values; none of the operations allocate except where noted.
package geometry

import (
	"fmt"
	"math"
)

// Eps is the tolerance used by the predicates in this package. Scenario
// coordinates are O(100), so 1e-9 leaves ~11 digits of headroom.
const Eps = 1e-9

// Vec is a point or displacement in the plane.
type Vec struct {
	X float64
	Y float64
}

// V is shorthand for Vec{X: x, Y: y}.
func V(x, y float64) Vec { return Vec{X: x, Y: y} }

// Add returns v + w.
func (v Vec) Add(w Vec) Vec { return Vec{X: v.X + w.X, Y: v.Y + w.Y} }

// Sub returns v - w.
func (v Vec) Sub(w Vec) Vec { return Vec{X: v.X - w.X, Y: v.Y - w.Y} }

// Scale returns v scaled by k.
func (v Vec) Scale(k float64) Vec { return Vec{X: v.X * k, Y: v.Y * k} }

// Dot returns the dot product v · w.
func (v Vec) Dot(w Vec) float64 { return v.X*w.X + v.Y*w.Y }

// Cross returns the z component of the cross product v × w.
func (v Vec) Cross(w Vec) float64 { return v.X*w.Y - v.Y*w.X }

// Norm returns the Euclidean length of v.
func (v Vec) Norm() float64 { return math.Hypot(v.X, v.Y) }

// Norm2 returns the squared Euclidean length of v.
func (v Vec) Norm2() float64 { return v.X*v.X + v.Y*v.Y }

// Dist returns the Euclidean distance between v and w.
func (v Vec) Dist(w Vec) float64 { return v.Sub(w).Norm() }

// Dist2 returns the squared Euclidean distance between v and w.
func (v Vec) Dist2(w Vec) float64 { return v.Sub(w).Norm2() }

// Lerp returns the point (1-t)·v + t·w.
func (v Vec) Lerp(w Vec, t float64) Vec {
	return Vec{X: v.X + (w.X-v.X)*t, Y: v.Y + (w.Y-v.Y)*t}
}

// Unit returns v scaled to length 1. The zero vector is returned
// unchanged.
func (v Vec) Unit() Vec {
	n := v.Norm()
	if n < Eps {
		return Vec{}
	}
	return v.Scale(1 / n)
}

// Perp returns v rotated 90° counter-clockwise.
func (v Vec) Perp() Vec { return Vec{X: -v.Y, Y: v.X} }

// Eq reports whether v and w coincide within Eps.
func (v Vec) Eq(w Vec) bool {
	return math.Abs(v.X-w.X) <= Eps && math.Abs(v.Y-w.Y) <= Eps
}

// String implements fmt.Stringer.
func (v Vec) String() string { return fmt.Sprintf("(%.6g, %.6g)", v.X, v.Y) }
