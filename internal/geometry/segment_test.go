package geometry

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSegmentBasics(t *testing.T) {
	s := Seg(V(0, 0), V(3, 4))
	if got := s.Length(); !almostEq(got, 5, 1e-12) {
		t.Errorf("Length = %v, want 5", got)
	}
	if got := s.Midpoint(); !got.Eq(V(1.5, 2)) {
		t.Errorf("Midpoint = %v, want (1.5,2)", got)
	}
	if got := s.At(0.2); !got.Eq(V(0.6, 0.8)) {
		t.Errorf("At(0.2) = %v", got)
	}
}

func TestSegmentClosestParam(t *testing.T) {
	s := Seg(V(0, 0), V(10, 0))
	tests := []struct {
		name string
		p    Vec
		want float64
	}{
		{"interior", V(4, 3), 0.4},
		{"before-A", V(-5, 1), 0},
		{"past-B", V(20, -2), 1},
		{"on-segment", V(7, 0), 0.7},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := s.ClosestParam(tt.p); !almostEq(got, tt.want, 1e-12) {
				t.Errorf("ClosestParam(%v) = %v, want %v", tt.p, got, tt.want)
			}
		})
	}
}

func TestSegmentDegenerateClosestParam(t *testing.T) {
	pt := Seg(V(2, 2), V(2, 2))
	if got := pt.ClosestParam(V(9, 9)); got != 0 {
		t.Errorf("point segment ClosestParam = %v, want 0", got)
	}
	if got := pt.DistTo(V(5, 6)); !almostEq(got, 5, 1e-12) {
		t.Errorf("point segment DistTo = %v, want 5", got)
	}
}

func TestSegmentIntersect(t *testing.T) {
	tests := []struct {
		name   string
		s, o   Segment
		wantOK bool
		wantT  float64
	}{
		{
			name:   "plain-cross",
			s:      Seg(V(0, 0), V(10, 10)),
			o:      Seg(V(0, 10), V(10, 0)),
			wantOK: true, wantT: 0.5,
		},
		{
			name:   "miss-parallel",
			s:      Seg(V(0, 0), V(10, 0)),
			o:      Seg(V(0, 1), V(10, 1)),
			wantOK: false,
		},
		{
			name:   "miss-disjoint",
			s:      Seg(V(0, 0), V(1, 0)),
			o:      Seg(V(5, -1), V(5, 1)),
			wantOK: false,
		},
		{
			name:   "touch-endpoint",
			s:      Seg(V(0, 0), V(10, 0)),
			o:      Seg(V(10, 0), V(10, 10)),
			wantOK: true, wantT: 1,
		},
		{
			name:   "collinear-overlap",
			s:      Seg(V(0, 0), V(10, 0)),
			o:      Seg(V(4, 0), V(20, 0)),
			wantOK: true, wantT: 0.4,
		},
		{
			name:   "collinear-disjoint",
			s:      Seg(V(0, 0), V(1, 0)),
			o:      Seg(V(2, 0), V(3, 0)),
			wantOK: false,
		},
		{
			name:   "t-junction",
			s:      Seg(V(0, -5), V(0, 5)),
			o:      Seg(V(-5, 0), V(0, 0)),
			wantOK: true, wantT: 0.5,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			gotT, gotOK := tt.s.Intersect(tt.o)
			if gotOK != tt.wantOK {
				t.Fatalf("Intersect ok = %v, want %v", gotOK, tt.wantOK)
			}
			if gotOK && !almostEq(gotT, tt.wantT, 1e-9) {
				t.Errorf("Intersect t = %v, want %v", gotT, tt.wantT)
			}
		})
	}
}

// Property: intersection is symmetric in reporting a hit (the parameter
// differs, but the hit/miss decision must agree).
func TestSegmentIntersectSymmetryProperty(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy, dx, dy float64) bool {
		if !finiteAll(ax, ay, bx, by, cx, cy, dx, dy) {
			return true
		}
		s := Seg(clampVec(V(ax, ay)), clampVec(V(bx, by)))
		o := Seg(clampVec(V(cx, cy)), clampVec(V(dx, dy)))
		_, ok1 := s.Intersect(o)
		_, ok2 := o.Intersect(s)
		return ok1 == ok2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: the reported intersection point lies on (or within tolerance
// of) both segments.
func TestSegmentIntersectPointOnBothProperty(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy, dx, dy float64) bool {
		if !finiteAll(ax, ay, bx, by, cx, cy, dx, dy) {
			return true
		}
		s := Seg(clampVec(V(ax, ay)), clampVec(V(bx, by)))
		o := Seg(clampVec(V(cx, cy)), clampVec(V(dx, dy)))
		tt, ok := s.Intersect(o)
		if !ok {
			return true
		}
		p := s.At(tt)
		scale := 1 + s.Length() + o.Length()
		return o.DistTo(p) <= 1e-6*scale && s.DistTo(p) <= 1e-6*scale
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSegmentDistToNeverNegative(t *testing.T) {
	f := func(ax, ay, bx, by, px, py float64) bool {
		if !finiteAll(ax, ay, bx, by, px, py) {
			return true
		}
		s := Seg(clampVec(V(ax, ay)), clampVec(V(bx, by)))
		d := s.DistTo(clampVec(V(px, py)))
		return d >= 0 && !math.IsNaN(d)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
