package geometry

import (
	"math"
	"testing"
)

// FuzzChordLength drives the polygon clipper with arbitrary segments
// over the U-shaped obstacle: the chord must always be finite,
// non-negative, and never exceed the segment length.
func FuzzChordLength(f *testing.F) {
	f.Add(0.0, 0.0, 10.0, 10.0)
	f.Add(-10.0, 10.0, 40.0, 10.0)
	f.Add(15.0, -5.0, 15.0, 25.0)
	f.Add(0.0, 0.0, 0.0, 0.0)
	f.Add(1e9, 1e9, -1e9, -1e9)

	u := uShape(2)
	f.Fuzz(func(t *testing.T, ax, ay, bx, by float64) {
		for _, v := range []float64{ax, ay, bx, by} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Skip()
			}
		}
		s := Seg(V(ax, ay), V(bx, by))
		c := u.ChordLength(s)
		if math.IsNaN(c) || c < 0 {
			t.Fatalf("chord(%v) = %v", s, c)
		}
		if c > s.Length()+1e-6*(1+s.Length()) {
			t.Fatalf("chord %v exceeds segment length %v", c, s.Length())
		}
	})
}

// FuzzSegmentIntersect checks that any reported intersection point lies
// on both segments.
func FuzzSegmentIntersect(f *testing.F) {
	f.Add(0.0, 0.0, 10.0, 10.0, 0.0, 10.0, 10.0, 0.0)
	f.Add(0.0, 0.0, 1.0, 0.0, 2.0, 0.0, 3.0, 0.0)
	f.Fuzz(func(t *testing.T, ax, ay, bx, by, cx, cy, dx, dy float64) {
		for _, v := range []float64{ax, ay, bx, by, cx, cy, dx, dy} {
			if math.IsNaN(v) || math.Abs(v) > 1e9 {
				t.Skip()
			}
		}
		s := Seg(V(ax, ay), V(bx, by))
		o := Seg(V(cx, cy), V(dx, dy))
		tt, ok := s.Intersect(o)
		if !ok {
			return
		}
		if tt < 0 || tt > 1 || math.IsNaN(tt) {
			t.Fatalf("intersection parameter %v out of [0,1]", tt)
		}
		p := s.At(tt)
		scale := 1 + s.Length() + o.Length()
		if o.DistTo(p) > 1e-5*scale {
			t.Fatalf("intersection point %v misses other segment by %v", p, o.DistTo(p))
		}
	})
}
