package geometry

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestVecArithmetic(t *testing.T) {
	tests := []struct {
		name string
		got  Vec
		want Vec
	}{
		{"add", V(1, 2).Add(V(3, -4)), V(4, -2)},
		{"sub", V(1, 2).Sub(V(3, -4)), V(-2, 6)},
		{"scale", V(1.5, -2).Scale(2), V(3, -4)},
		{"perp", V(1, 0).Perp(), V(0, 1)},
		{"lerp-mid", V(0, 0).Lerp(V(2, 4), 0.5), V(1, 2)},
		{"lerp-ends", V(3, 3).Lerp(V(9, 9), 0), V(3, 3)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if !tt.got.Eq(tt.want) {
				t.Errorf("got %v, want %v", tt.got, tt.want)
			}
		})
	}
}

func TestVecNormDot(t *testing.T) {
	v := V(3, 4)
	if got := v.Norm(); !almostEq(got, 5, 1e-12) {
		t.Errorf("Norm() = %v, want 5", got)
	}
	if got := v.Norm2(); !almostEq(got, 25, 1e-12) {
		t.Errorf("Norm2() = %v, want 25", got)
	}
	if got := v.Dot(V(-4, 3)); !almostEq(got, 0, 1e-12) {
		t.Errorf("Dot(perp) = %v, want 0", got)
	}
	if got := v.Cross(V(0, 1)); !almostEq(got, 3, 1e-12) {
		t.Errorf("Cross = %v, want 3", got)
	}
}

func TestVecUnit(t *testing.T) {
	if got := V(0, 0).Unit(); !got.Eq(V(0, 0)) {
		t.Errorf("zero vector Unit() = %v, want zero", got)
	}
	u := V(10, -10).Unit()
	if !almostEq(u.Norm(), 1, 1e-12) {
		t.Errorf("Unit norm = %v, want 1", u.Norm())
	}
}

func TestVecDist(t *testing.T) {
	if got := V(0, 0).Dist(V(3, 4)); !almostEq(got, 5, 1e-12) {
		t.Errorf("Dist = %v, want 5", got)
	}
	if got := V(1, 1).Dist2(V(4, 5)); !almostEq(got, 25, 1e-12) {
		t.Errorf("Dist2 = %v, want 25", got)
	}
}

// Property: |v+w|² = |v|² + 2 v·w + |w|².
func TestVecNormExpansionProperty(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		if !finiteAll(ax, ay, bx, by) {
			return true
		}
		v, w := clampVec(V(ax, ay)), clampVec(V(bx, by))
		lhs := v.Add(w).Norm2()
		rhs := v.Norm2() + 2*v.Dot(w) + w.Norm2()
		return almostEq(lhs, rhs, 1e-6*(1+math.Abs(lhs)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: cross product is antisymmetric.
func TestVecCrossAntisymmetryProperty(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		if !finiteAll(ax, ay, bx, by) {
			return true
		}
		v, w := clampVec(V(ax, ay)), clampVec(V(bx, by))
		return almostEq(v.Cross(w), -w.Cross(v), 1e-6*(1+math.Abs(v.Cross(w))))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: the triangle inequality holds.
func TestVecTriangleInequalityProperty(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy float64) bool {
		if !finiteAll(ax, ay, bx, by, cx, cy) {
			return true
		}
		a, b, c := clampVec(V(ax, ay)), clampVec(V(bx, by)), clampVec(V(cx, cy))
		return a.Dist(c) <= a.Dist(b)+b.Dist(c)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func finiteAll(xs ...float64) bool {
	for _, x := range xs {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return false
		}
	}
	return true
}

// clampVec maps arbitrary float inputs into a numerically sane range so
// the property checks do not trip on catastrophic cancellation.
func clampVec(v Vec) Vec {
	c := func(x float64) float64 {
		return math.Mod(x, 1e6)
	}
	return V(c(v.X), c(v.Y))
}
