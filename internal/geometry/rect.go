package geometry

import "math"

// Rect is an axis-aligned rectangle spanning [Min.X, Max.X] × [Min.Y,
// Max.Y].
type Rect struct {
	Min Vec
	Max Vec
}

// NewRect returns the rectangle with the given corners, normalizing so
// Min ≤ Max componentwise.
func NewRect(a, b Vec) Rect {
	return Rect{
		Min: Vec{X: math.Min(a.X, b.X), Y: math.Min(a.Y, b.Y)},
		Max: Vec{X: math.Max(a.X, b.X), Y: math.Max(a.Y, b.Y)},
	}
}

// Width returns the x extent of r.
func (r Rect) Width() float64 { return r.Max.X - r.Min.X }

// Height returns the y extent of r.
func (r Rect) Height() float64 { return r.Max.Y - r.Min.Y }

// Area returns the area of r.
func (r Rect) Area() float64 { return r.Width() * r.Height() }

// Center returns the center point of r.
func (r Rect) Center() Vec {
	return Vec{X: (r.Min.X + r.Max.X) / 2, Y: (r.Min.Y + r.Max.Y) / 2}
}

// Contains reports whether p lies in r (boundary inclusive, within Eps).
func (r Rect) Contains(p Vec) bool {
	return p.X >= r.Min.X-Eps && p.X <= r.Max.X+Eps &&
		p.Y >= r.Min.Y-Eps && p.Y <= r.Max.Y+Eps
}

// Expand returns r grown by d on every side.
func (r Rect) Expand(d float64) Rect {
	return Rect{
		Min: Vec{X: r.Min.X - d, Y: r.Min.Y - d},
		Max: Vec{X: r.Max.X + d, Y: r.Max.Y + d},
	}
}

// Intersects reports whether r and o overlap (boundary touch counts).
func (r Rect) Intersects(o Rect) bool {
	return r.Min.X <= o.Max.X+Eps && o.Min.X <= r.Max.X+Eps &&
		r.Min.Y <= o.Max.Y+Eps && o.Min.Y <= r.Max.Y+Eps
}

// IntersectsSegment reports whether the segment s touches r, using the
// slab (Liang–Barsky) clip test.
func (r Rect) IntersectsSegment(s Segment) bool {
	d := s.B.Sub(s.A)
	t0, t1 := 0.0, 1.0
	clip := func(p, q float64) bool {
		if math.Abs(p) < Eps {
			return q >= -Eps
		}
		t := q / p
		if p < 0 {
			if t > t1 {
				return false
			}
			if t > t0 {
				t0 = t
			}
		} else {
			if t < t0 {
				return false
			}
			if t < t1 {
				t1 = t
			}
		}
		return true
	}
	return clip(-d.X, s.A.X-r.Min.X) &&
		clip(d.X, r.Max.X-s.A.X) &&
		clip(-d.Y, s.A.Y-r.Min.Y) &&
		clip(d.Y, r.Max.Y-s.A.Y)
}

// Polygon returns r as a 4-vertex polygon.
func (r Rect) Polygon() Polygon {
	return MustPolygon([]Vec{
		r.Min,
		{X: r.Max.X, Y: r.Min.Y},
		r.Max,
		{X: r.Min.X, Y: r.Max.Y},
	})
}
