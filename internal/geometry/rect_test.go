package geometry

import (
	"testing"
)

func TestNewRectNormalizes(t *testing.T) {
	r := NewRect(V(5, 7), V(1, 2))
	if !r.Min.Eq(V(1, 2)) || !r.Max.Eq(V(5, 7)) {
		t.Errorf("NewRect did not normalize: %+v", r)
	}
}

func TestRectGeometry(t *testing.T) {
	r := NewRect(V(0, 0), V(4, 2))
	if got := r.Width(); !almostEq(got, 4, 1e-12) {
		t.Errorf("Width = %v", got)
	}
	if got := r.Height(); !almostEq(got, 2, 1e-12) {
		t.Errorf("Height = %v", got)
	}
	if got := r.Area(); !almostEq(got, 8, 1e-12) {
		t.Errorf("Area = %v", got)
	}
	if got := r.Center(); !got.Eq(V(2, 1)) {
		t.Errorf("Center = %v", got)
	}
}

func TestRectContains(t *testing.T) {
	r := NewRect(V(0, 0), V(10, 10))
	tests := []struct {
		p    Vec
		want bool
	}{
		{V(5, 5), true},
		{V(0, 0), true},
		{V(10, 10), true},
		{V(10.5, 5), false},
		{V(-0.5, 5), false},
	}
	for _, tt := range tests {
		if got := r.Contains(tt.p); got != tt.want {
			t.Errorf("Contains(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
}

func TestRectExpand(t *testing.T) {
	r := NewRect(V(2, 2), V(4, 4)).Expand(1)
	if !r.Min.Eq(V(1, 1)) || !r.Max.Eq(V(5, 5)) {
		t.Errorf("Expand = %+v", r)
	}
}

func TestRectIntersects(t *testing.T) {
	a := NewRect(V(0, 0), V(4, 4))
	tests := []struct {
		name string
		b    Rect
		want bool
	}{
		{"overlap", NewRect(V(2, 2), V(6, 6)), true},
		{"touch-edge", NewRect(V(4, 0), V(8, 4)), true},
		{"disjoint", NewRect(V(5, 5), V(6, 6)), false},
		{"contained", NewRect(V(1, 1), V(2, 2)), true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := a.Intersects(tt.b); got != tt.want {
				t.Errorf("Intersects = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestRectIntersectsSegment(t *testing.T) {
	r := NewRect(V(0, 0), V(10, 10))
	tests := []struct {
		name string
		s    Segment
		want bool
	}{
		{"crossing", Seg(V(-5, 5), V(15, 5)), true},
		{"inside", Seg(V(2, 2), V(8, 8)), true},
		{"miss-above", Seg(V(-5, 12), V(15, 12)), false},
		{"touch-corner", Seg(V(-1, 11), V(1, 9)), true},
		{"vertical-miss", Seg(V(12, -5), V(12, 15)), false},
		{"endpoint-on-edge", Seg(V(10, 5), V(20, 5)), true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := r.IntersectsSegment(tt.s); got != tt.want {
				t.Errorf("IntersectsSegment = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestRectPolygon(t *testing.T) {
	p := NewRect(V(0, 0), V(3, 2)).Polygon()
	if got := p.Area(); !almostEq(got, 6, 1e-9) {
		t.Errorf("Polygon().Area = %v, want 6", got)
	}
	if !p.Contains(V(1, 1)) {
		t.Error("rect polygon should contain interior point")
	}
}
