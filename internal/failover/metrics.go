package failover

import "radloc/internal/obs"

// promoterMetrics instruments one Promoter. All methods are
// nil-receiver safe so an unmetered promoter pays one branch.
type promoterMetrics struct {
	peerUpGauge *obs.GaugeFamily
	probes      *obs.Counter
	probeFails  *obs.Counter
	degraded    *obs.Counter
	deaths      *obs.Counter
	promotions  *obs.Counter
	refusals    *obs.Counter
}

// newPromoterMetrics registers the promoter's collectors on r; nil r
// disables instrumentation entirely.
func newPromoterMetrics(r *obs.Registry) *promoterMetrics {
	if r == nil {
		return nil
	}
	return &promoterMetrics{
		peerUpGauge: r.GaugeFamily("radloc_failover_peer_up",
			"1 while the peer answers probes (any HTTP response counts), 0 once declared dead.", "peer"),
		probes: r.Counter("radloc_failover_probes_total",
			"Failure-detector probes sent to peers."),
		probeFails: r.Counter("radloc_failover_probe_failures_total",
			"Probes that got no HTTP response at all (transport failure or timeout)."),
		degraded: r.Counter("radloc_failover_degraded_misses_total",
			"Probes answered 503 with X-Radloc-Storage: degraded — a peer alive on the wire but refusing writes, counted as a miss."),
		deaths: r.Counter("radloc_failover_peer_deaths_total",
			"Peers declared dead: suspicion threshold and hold-down window both exceeded."),
		promotions: r.Counter("radloc_failover_promotions_total",
			"Unattended standby self-promotions performed after a peer death."),
		refusals: r.Counter("radloc_failover_refusals_total",
			"Promotions refused because replication lag exceeded the configured bound."),
	}
}

// probed accounts one probe and whether it missed.
func (m *promoterMetrics) probed(missed bool) {
	if m == nil {
		return
	}
	m.probes.Inc()
	if missed {
		m.probeFails.Inc()
	}
}

// peerUp refreshes a peer's liveness gauge.
func (m *promoterMetrics) peerUp(peer string, up bool) {
	if m == nil {
		return
	}
	v := 0.0
	if up {
		v = 1.0
	}
	m.peerUpGauge.With(peer).Set(v)
}

// degradedMiss accounts one degraded-storage probe miss.
func (m *promoterMetrics) degradedMiss() {
	if m == nil {
		return
	}
	m.degraded.Inc()
}

// died accounts one death declaration.
func (m *promoterMetrics) died() {
	if m == nil {
		return
	}
	m.deaths.Inc()
}

// promoted accounts one unattended promotion.
func (m *promoterMetrics) promoted() {
	if m == nil {
		return
	}
	m.promotions.Inc()
}

// refused accounts one lag-bound refusal.
func (m *promoterMetrics) refused() {
	if m == nil {
		return
	}
	m.refusals.Inc()
}
