// Package failover turns the cluster's primary/standby layer into an
// unattended HA system. Each node runs a Promoter: a failure detector
// that probes every peer's /readyz on a jittered interval and pulls
// its /cluster/routes table so topology is learned, not configured.
// A peer is suspected after N consecutive probe misses and declared
// dead only once it has also been continuously unreachable for the
// hold-down window — a flapping link refreshes the last-alive stamp
// on every successful probe, so it never accumulates the hold-down
// and never triggers a promotion (no epoch thrash). When a peer is
// declared dead, the Promoter self-promotes the local standby for
// each zone the dead peer owned — through the cluster layer's
// existing epoch-fencing path — but only if local replication lag is
// under a configurable bound; otherwise it refuses, raises a metric,
// and retries on later ticks (the operator can still force the issue
// with `radloc ctl promote`).
package failover

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"sync"
	"time"

	"radloc/internal/clock"
	"radloc/internal/cluster"
	"radloc/internal/obs"
	"radloc/internal/rng"
)

// Options configures a Promoter.
type Options struct {
	// Node is the cluster membership the promoter acts on. Required.
	Node *cluster.Node
	// Self is this node's own base URL, used to recognize itself in
	// learned routes. Required.
	Self string
	// Peers are the other nodes' base URLs to probe. A peer equal to
	// Self is skipped.
	Peers []string
	// Token, when non-empty, is attached as a bearer token to every
	// probe.
	Token string
	// HTTP performs the probes (default http.DefaultTransport).
	HTTP http.RoundTripper
	// Clock drives the probe schedule (default the wall clock).
	Clock clock.Clock
	// RNG jitters the probe interval; nil seeds a fixed stream from
	// Self, so a deterministic test fabric sees a deterministic
	// schedule.
	RNG *rng.Stream
	// Interval is the base probe period (default 2s).
	Interval time.Duration
	// Jitter is the ± fraction of Interval each tick is displaced by
	// (default 0.2), so a fleet restarted together does not probe in
	// lockstep.
	Jitter float64
	// Suspect is the consecutive probe misses before a peer is
	// suspected (default 3).
	Suspect int
	// HoldDown is how long a suspected peer must be continuously
	// unreachable before it is declared dead (default 10s). Any
	// successful probe resets the window — the flapping defense.
	HoldDown time.Duration
	// ProbeTimeout bounds one probe round-trip (default Interval).
	ProbeTimeout time.Duration
	// MaxPromoteLag is the highest replication lag, in records, at
	// which self-promotion is still safe (default 0: the standby must
	// be fully caught up to the last head it saw). Above it the
	// promoter refuses and raises radloc_failover_refusals_total.
	MaxPromoteLag uint64
	// Metrics, when non-nil, receives the radloc_failover_* collectors.
	Metrics *obs.Registry
	// Log, when non-nil, receives detection and promotion decisions.
	Log *log.Logger
}

// peerState is the failure detector's view of one peer.
type peerState struct {
	url       string
	misses    int       // consecutive failed probes
	lastAlive time.Time // last time any probe got a healthy HTTP response
	lastProbe time.Time // last time any probe was attempted
	dead      bool      // declared dead (suspect + hold-down elapsed)
}

// Promoter is the per-node failure detector and auto-promotion loop.
type Promoter struct {
	opts Options
	met  *promoterMetrics

	mu    sync.Mutex
	peers []*peerState

	cancel context.CancelFunc
	wg     sync.WaitGroup
}

// New builds a Promoter. Call Start to begin probing.
func New(opts Options) (*Promoter, error) {
	if opts.Node == nil {
		return nil, errors.New("failover: Options.Node is required")
	}
	if opts.Self == "" {
		return nil, errors.New("failover: Options.Self is required")
	}
	if opts.HTTP == nil {
		opts.HTTP = http.DefaultTransport
	}
	if opts.Clock == nil {
		opts.Clock = clock.Real{}
	}
	if opts.RNG == nil {
		opts.RNG = rng.NewNamed(0x0fa17, opts.Self)
	}
	if opts.Interval <= 0 {
		opts.Interval = 2 * time.Second
	}
	if opts.Jitter < 0 || opts.Jitter >= 1 {
		opts.Jitter = 0.2
	}
	if opts.Suspect <= 0 {
		opts.Suspect = 3
	}
	if opts.HoldDown <= 0 {
		opts.HoldDown = 10 * time.Second
	}
	if opts.ProbeTimeout <= 0 {
		opts.ProbeTimeout = opts.Interval
	}
	p := &Promoter{opts: opts, met: newPromoterMetrics(opts.Metrics)}
	now := opts.Clock.Now()
	for _, u := range opts.Peers {
		if u == "" || u == opts.Self {
			continue
		}
		p.peers = append(p.peers, &peerState{url: u, lastAlive: now})
		p.met.peerUp(u, true)
	}
	return p, nil
}

func (p *Promoter) logf(format string, args ...any) {
	if p.opts.Log != nil {
		p.opts.Log.Printf(format, args...)
	}
}

// Start launches the probe loop. Close stops it.
func (p *Promoter) Start() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.cancel != nil {
		return
	}
	ctx, cancel := context.WithCancel(context.Background())
	p.cancel = cancel
	p.wg.Add(1)
	go p.loop(ctx)
}

// Close stops the probe loop and waits for it to exit.
func (p *Promoter) Close() {
	p.mu.Lock()
	cancel := p.cancel
	p.cancel = nil
	p.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	p.wg.Wait()
}

// loop runs Tick on a jittered schedule until cancelled.
func (p *Promoter) loop(ctx context.Context) {
	defer p.wg.Done()
	for {
		if ctx.Err() != nil {
			return
		}
		p.Tick(ctx)
		if ctx.Err() != nil {
			return
		}
		p.opts.Clock.Sleep(p.jitteredInterval())
	}
}

// jitteredInterval displaces the base interval by ±Jitter.
func (p *Promoter) jitteredInterval() time.Duration {
	base := float64(p.opts.Interval)
	f := 1 + p.opts.Jitter*(2*p.opts.RNG.Float64()-1)
	return time.Duration(base * f)
}

// Tick runs one probe round: every peer's liveness is checked, its
// routes are merged, death is (re)evaluated against the suspicion
// threshold and hold-down window, and promotions are attempted for
// zones owned by dead peers. Exposed so tests drive the detector
// deterministically under a fake clock.
func (p *Promoter) Tick(ctx context.Context) {
	now := p.opts.Clock.Now()
	for _, ps := range p.peers {
		alive := p.probe(ctx, ps.url)
		p.met.probed(!alive)
		p.mu.Lock()
		ps.lastProbe = now
		if alive {
			if ps.dead {
				p.logf("failover: peer %s is back", ps.url)
			}
			ps.misses = 0
			ps.lastAlive = now
			ps.dead = false
			p.met.peerUp(ps.url, true)
			p.mu.Unlock()
			continue
		}
		ps.misses++
		suspected := ps.misses >= p.opts.Suspect
		heldDown := now.Sub(ps.lastAlive) >= p.opts.HoldDown
		if suspected && heldDown && !ps.dead {
			ps.dead = true
			p.met.peerUp(ps.url, false)
			p.met.died()
			p.logf("failover: peer %s declared dead after %d misses and %s unreachable",
				ps.url, ps.misses, now.Sub(ps.lastAlive))
		}
		dead := ps.dead
		p.mu.Unlock()
		if dead {
			p.promoteZonesOf(ps.url)
		}
	}
}

// probe checks one peer: any HTTP response — including 503 from a
// lagging-but-running daemon — counts as alive (a lagging node is
// not a dead node), and its routes table is merged when readable.
// Two things are a miss: a transport-level failure, and a 503
// carrying the X-Radloc-Storage: degraded header — a primary whose
// disk stopped accepting writes is answering 507 to every agent, so
// for promotion purposes it is as good as gone; only the hold-down
// window separates a transient ENOSPC blip from a real takeover.
func (p *Promoter) probe(ctx context.Context, peer string) bool {
	ctx, cancel := p.opts.Clock.WithTimeout(ctx, p.opts.ProbeTimeout)
	defer cancel()
	resp, err := p.get(ctx, peer+"/readyz")
	if err != nil {
		return false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode == http.StatusServiceUnavailable && resp.Header.Get("X-Radloc-Storage") == "degraded" {
		p.met.degradedMiss()
		return false
	}

	if rresp, err := p.get(ctx, peer+"/cluster/routes"); err == nil {
		var routes cluster.Routes
		if derr := json.NewDecoder(io.LimitReader(rresp.Body, 1<<20)).Decode(&routes); derr == nil {
			if p.opts.Node.LearnRoutes(routes) {
				p.logf("failover: learned routes from %s", peer)
			}
		}
		io.Copy(io.Discard, rresp.Body)
		rresp.Body.Close()
	}
	return true
}

// get issues one authenticated GET through the promoter's transport.
func (p *Promoter) get(ctx context.Context, u string) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	if p.opts.Token != "" {
		req.Header.Set("Authorization", "Bearer "+p.opts.Token)
	}
	return p.opts.HTTP.RoundTrip(req)
}

// promoteZonesOf promotes the local standby for every zone whose
// primary is the dead peer, provided this node is the zone's standby
// (designated in the routes table, or simply replicating it) and its
// lag is under the bound.
func (p *Promoter) promoteZonesOf(deadPeer string) {
	routes := p.opts.Node.Routes()
	for _, st := range p.opts.Node.Status() {
		if st.Role != cluster.RoleStandby || st.Primary != deadPeer {
			continue
		}
		if rt, ok := routes.Zones[st.Zone]; ok && rt.Standby != "" && rt.Standby != p.opts.Self {
			// Another node is the designated standby; let it take over.
			continue
		}
		if !st.CaughtUp && st.LagRecords > p.opts.MaxPromoteLag {
			p.met.refused()
			p.logf("failover: refusing to promote zone %q: lag %d records above bound %d",
				st.Zone, st.LagRecords, p.opts.MaxPromoteLag)
			continue
		}
		epoch, err := p.opts.Node.Promote(st.Zone)
		if err != nil {
			p.logf("failover: promote zone %q: %v", st.Zone, err)
			continue
		}
		p.met.promoted()
		p.logf("failover: promoted zone %q to epoch %d after death of %s", st.Zone, epoch, deadPeer)
	}
}

// PeerStatus is one peer's detector state as reported by Peers.
type PeerStatus struct {
	// URL is the peer's base URL.
	URL string `json:"url"`
	// Up reports the peer answered its most recent probe.
	Up bool `json:"up"`
	// Misses is the current consecutive-miss count.
	Misses int `json:"misses,omitempty"`
	// Dead reports the peer is declared dead (suspicion threshold and
	// hold-down window both exceeded).
	Dead bool `json:"dead,omitempty"`
	// DownFor is how long the peer has been unreachable, in seconds.
	DownFor float64 `json:"downForSeconds,omitempty"`
	// LastProbe is when the peer was last probed (zero before the
	// first tick).
	LastProbe time.Time `json:"lastProbe,omitempty"`
	// HoldDownRemaining is how much flap-damping time, in seconds, is
	// left before a currently-missing peer can be declared dead. Zero
	// once dead or up.
	HoldDownRemaining float64 `json:"holdDownRemainingSeconds,omitempty"`
}

// Peers reports the detector's current view, for status surfaces.
func (p *Promoter) Peers() []PeerStatus {
	now := p.opts.Clock.Now()
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]PeerStatus, 0, len(p.peers))
	for _, ps := range p.peers {
		st := PeerStatus{URL: ps.url, Up: ps.misses == 0, Misses: ps.misses, Dead: ps.dead, LastProbe: ps.lastProbe}
		if ps.misses > 0 {
			st.DownFor = now.Sub(ps.lastAlive).Seconds()
			if !ps.dead {
				if rem := p.opts.HoldDown - now.Sub(ps.lastAlive); rem > 0 {
					st.HoldDownRemaining = rem.Seconds()
				}
			}
		}
		out = append(out, st)
	}
	return out
}

// PeerViews adapts Peers to the cluster layer's relay type, for
// wiring via cluster.Node.SetPeersFunc so /cluster/status carries the
// detector's world-view. Safe for concurrent use.
func (p *Promoter) PeerViews() []cluster.PeerView {
	peers := p.Peers()
	out := make([]cluster.PeerView, len(peers))
	for i, ps := range peers {
		out[i] = cluster.PeerView{
			URL:                      ps.URL,
			Up:                       ps.Up,
			Misses:                   ps.Misses,
			Dead:                     ps.Dead,
			LastProbe:                ps.LastProbe,
			DownForSeconds:           ps.DownFor,
			HoldDownRemainingSeconds: ps.HoldDownRemaining,
		}
	}
	return out
}

// String identifies the promoter in logs.
func (p *Promoter) String() string {
	return fmt.Sprintf("failover.Promoter(%s, %d peers)", p.opts.Self, len(p.peers))
}
