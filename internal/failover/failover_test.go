package failover

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"radloc/internal/clock"
	"radloc/internal/cluster"
	"radloc/internal/obs"
	"radloc/internal/wal"
)

// stubBackend is a minimal cluster.Backend: an offset counter with
// just enough behavior for the promoter's decisions to be observable.
type stubBackend struct {
	mu  sync.Mutex
	off uint64
}

func (b *stubBackend) Offset() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.off
}
func (b *stubBackend) Oldest() uint64        { return 0 }
func (b *stubBackend) SetRetainFloor(uint64) {}
func (b *stubBackend) ReadWAL(from uint64, max int, fn func(off uint64, rec wal.Record) error) error {
	return nil
}
func (b *stubBackend) ApplyRecords(recs []cluster.RecordAt) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.off += uint64(len(recs))
	return nil
}
func (b *stubBackend) ExportState() (json.RawMessage, uint64, error) {
	return json.RawMessage(`{}`), b.Offset(), nil
}
func (b *stubBackend) Bootstrap(state json.RawMessage, applied uint64) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.off = applied
	return nil
}
func (b *stubBackend) Checkpoint() error { return nil }
func (b *stubBackend) QuarantineDiverged(floor uint64) (uint64, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	moved := b.off - floor
	b.off = floor
	return moved, nil
}

// fakeNet routes requests to in-process handlers by host, with
// per-host cut switches.
type fakeNet struct {
	mu       sync.Mutex
	handlers map[string]http.Handler
	down     map[string]bool
}

func newFakeNet() *fakeNet {
	return &fakeNet{handlers: make(map[string]http.Handler), down: make(map[string]bool)}
}

func (f *fakeNet) cut(host string, down bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.down[host] = down
}

func (f *fakeNet) RoundTrip(req *http.Request) (*http.Response, error) {
	f.mu.Lock()
	h, down := f.handlers[req.URL.Host], f.down[req.URL.Host]
	f.mu.Unlock()
	if h == nil || down {
		return nil, fmt.Errorf("fakeNet: host %q unreachable", req.URL.Host)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec.Result(), nil
}

// primaryHandler fakes the dead-peer-to-be: /readyz is fine and
// /cluster/wal serves an empty stream claiming the given head, so the
// standby learns exactly how far behind it is.
func primaryHandler(t *testing.T, epoch, head uint64, routes cluster.Routes) http.Handler {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	mux.HandleFunc("GET /cluster/routes", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(routes)
	})
	mux.HandleFunc("GET /cluster/wal/{zone}", func(w http.ResponseWriter, r *http.Request) {
		hello, err := cluster.EncodeControl(cluster.FrameHello, epoch, head, 0)
		if err != nil {
			t.Error(err)
		}
		end, err := cluster.EncodeControl(cluster.FrameEnd, epoch, head, 0)
		if err != nil {
			t.Error(err)
		}
		w.Write(hello)
		w.Write(end)
	})
	return mux
}

// newStandbyNode builds a real cluster node standing by for zone z1
// under http://a, wired over net. The real clock plus a huge pull
// interval means the replica pulls once at startup and then parks, so
// the promoter's fake-clock schedule stays deterministic.
func newStandbyNode(t *testing.T, net *fakeNet) (*cluster.Node, *stubBackend) {
	t.Helper()
	back := &stubBackend{}
	node, err := cluster.NewNode(cluster.Options{
		Self:         "http://b",
		Resolver:     func(string) (cluster.Backend, error) { return back, nil },
		HTTP:         net,
		PullInterval: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(node.Close)
	err = node.SetRoutes(cluster.Routes{Zones: map[string]cluster.Route{
		"z1": {Primary: "http://a", Standby: "http://b"},
	}})
	if err != nil {
		t.Fatal(err)
	}
	return node, back
}

func zoneStatus(t *testing.T, node *cluster.Node, zone string) cluster.ZoneStatus {
	t.Helper()
	for _, st := range node.Status() {
		if st.Zone == zone {
			return st
		}
	}
	t.Fatalf("zone %q not in status", zone)
	return cluster.ZoneStatus{}
}

// waitForPull polls until the standby has seen the primary's head.
func waitForPull(t *testing.T, node *cluster.Node, zone string, head uint64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if st := zoneStatus(t, node, zone); st.Head == head {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("standby never saw head %d", head)
}

func TestPromoterPromotesDeadPeersZones(t *testing.T) {
	net := newFakeNet()
	peerRoutes := cluster.Routes{Zones: map[string]cluster.Route{
		"z9": {Primary: "http://a", Epoch: 5},
	}}
	net.mu.Lock()
	net.handlers["a"] = primaryHandler(t, 1, 0, peerRoutes)
	net.mu.Unlock()
	node, _ := newStandbyNode(t, net)

	fc := clock.NewFake(time.Unix(1000, 0))
	reg := obs.NewRegistry()
	prom, err := New(Options{
		Node:     node,
		Self:     "http://b",
		Peers:    []string{"http://a", "http://b"}, // self is skipped
		HTTP:     net,
		Clock:    fc,
		Interval: 2 * time.Second,
		Suspect:  2,
		HoldDown: 5 * time.Second,
		Metrics:  reg,
	})
	if err != nil {
		t.Fatal(err)
	}

	// A healthy round: peer alive, and its routes table is learned.
	prom.Tick(context.Background())
	if rt, ok := node.Routes().Zones["z9"]; !ok || rt.Epoch != 5 {
		t.Fatalf("routes not learned from peer: %+v", node.Routes().Zones)
	}
	if st := zoneStatus(t, node, "z1"); st.Role != cluster.RoleStandby {
		t.Fatalf("z1 role = %s before death", st.Role)
	}

	// Kill the peer: two misses satisfy suspicion, but the hold-down
	// must elapse before a promotion happens.
	net.cut("a", true)
	fc.Advance(3 * time.Second)
	prom.Tick(context.Background())
	fc.Advance(3 * time.Second)
	prom.Tick(context.Background()) // miss 2, down 6s < but lastAlive was tick 1's time...
	if st := zoneStatus(t, node, "z1"); st.Role == cluster.RolePrimary {
		// Depending on rounding this tick may already exceed hold-down;
		// the assertion that matters is the final state below.
		t.Log("promoted on second miss (hold-down already elapsed)")
	}
	fc.Advance(3 * time.Second)
	prom.Tick(context.Background())

	st := zoneStatus(t, node, "z1")
	if st.Role != cluster.RolePrimary {
		t.Fatalf("z1 role = %s after death + hold-down, want primary", st.Role)
	}
	if st.Epoch != 2 {
		t.Fatalf("z1 epoch = %d after unattended promotion, want 2", st.Epoch)
	}
	if got := len(prom.Peers()); got != 1 {
		t.Fatalf("promoter tracks %d peers, want 1 (self skipped)", got)
	}
	if !prom.Peers()[0].Dead {
		t.Fatal("peer not reported dead")
	}
}

func TestPromoterHoldDownPreventsFlapPromotions(t *testing.T) {
	net := newFakeNet()
	net.mu.Lock()
	net.handlers["a"] = primaryHandler(t, 1, 0, cluster.Routes{})
	net.mu.Unlock()
	node, _ := newStandbyNode(t, net)

	fc := clock.NewFake(time.Unix(1000, 0))
	prom, err := New(Options{
		Node:     node,
		Self:     "http://b",
		Peers:    []string{"http://a"},
		HTTP:     net,
		Clock:    fc,
		Interval: 2 * time.Second,
		Suspect:  1,                // suspicion is instant...
		HoldDown: 10 * time.Second, // ...but the hold-down is long
	})
	if err != nil {
		t.Fatal(err)
	}

	// Flap: three missed probes, then one answered, repeatedly. The
	// misses repeatedly satisfy the suspicion threshold, but every
	// successful probe refreshes lastAlive, so the peer is never
	// continuously down for the hold-down window and no promotion can
	// happen — this is the epoch-thrash defense.
	for cycle := 0; cycle < 5; cycle++ {
		net.cut("a", true)
		for i := 0; i < 3; i++ {
			fc.Advance(2 * time.Second)
			prom.Tick(context.Background())
		}
		net.cut("a", false)
		fc.Advance(2 * time.Second)
		prom.Tick(context.Background())
	}

	st := zoneStatus(t, node, "z1")
	if st.Role != cluster.RoleStandby {
		t.Fatalf("z1 role = %s after flapping, want standby", st.Role)
	}
	if st.Epoch != 1 {
		t.Fatalf("z1 epoch = %d after flapping, want 1 (no thrash)", st.Epoch)
	}
	if prom.Peers()[0].Dead {
		t.Fatal("flapping peer declared dead")
	}
}

func TestPromoterRefusesWhenLagAboveBound(t *testing.T) {
	net := newFakeNet()
	net.mu.Lock()
	net.handlers["a"] = primaryHandler(t, 1, 100, cluster.Routes{}) // head 100, ships nothing
	net.mu.Unlock()
	node, _ := newStandbyNode(t, net)
	waitForPull(t, node, "z1", 100) // standby now knows it is 100 records behind

	fc := clock.NewFake(time.Unix(1000, 0))
	reg := obs.NewRegistry()
	prom, err := New(Options{
		Node:          node,
		Self:          "http://b",
		Peers:         []string{"http://a"},
		HTTP:          net,
		Clock:         fc,
		Interval:      2 * time.Second,
		Suspect:       1,
		HoldDown:      2 * time.Second,
		MaxPromoteLag: 10,
		Metrics:       reg,
	})
	if err != nil {
		t.Fatal(err)
	}

	net.cut("a", true)
	fc.Advance(3 * time.Second)
	prom.Tick(context.Background())
	fc.Advance(3 * time.Second)
	prom.Tick(context.Background())

	st := zoneStatus(t, node, "z1")
	if st.Role != cluster.RoleStandby {
		t.Fatalf("z1 role = %s, want standby (lag 100 > bound 10)", st.Role)
	}
	if st.Epoch != 1 {
		t.Fatalf("z1 epoch = %d, want 1", st.Epoch)
	}
	if !prom.Peers()[0].Dead {
		t.Fatal("peer should be declared dead even when promotion is refused")
	}
	snap := metricValue(t, reg, "radloc_failover_refusals_total")
	if snap < 1 {
		t.Fatalf("refusals counter = %v, want >= 1", snap)
	}
	if promoted := metricValue(t, reg, "radloc_failover_promotions_total"); promoted != 0 {
		t.Fatalf("promotions counter = %v, want 0", promoted)
	}
}

// metricValue reads one unlabeled counter/gauge from the registry's
// text exposition.
func metricValue(t *testing.T, reg *obs.Registry, name string) float64 {
	t.Helper()
	var buf bytes.Buffer
	if err := reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	var val float64
	found := false
	for _, line := range strings.Split(buf.String(), "\n") {
		var got float64
		if n, _ := fmt.Sscanf(line, name+" %f", &got); n == 1 {
			val, found = got, true
		}
	}
	if !found {
		t.Fatalf("metric %s not found", name)
	}
	return val
}
