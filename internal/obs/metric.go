package obs

import (
	"math"
	"sync"
	"sync/atomic"
)

// Counter is a monotone event count. The zero value is unusable;
// obtain counters from a Registry. All methods are safe for concurrent
// use and lock-free.
type Counter struct {
	name, help string
	v          atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Store sets the absolute count — for restoring persisted state
// (checkpoint recovery), never for normal accounting.
func (c *Counter) Store(v uint64) { c.v.Store(v) }

func (c *Counter) metricName() string { return c.name }
func (c *Counter) metricHelp() string { return c.help }
func (c *Counter) metricType() string { return "counter" }

// funcCounter reads its value from a callback at exposition time.
type funcCounter struct {
	name, help string
	mu         sync.Mutex
	fn         func() uint64
}

func (c *funcCounter) value() uint64 {
	c.mu.Lock()
	fn := c.fn
	c.mu.Unlock()
	if fn == nil {
		return 0
	}
	return fn()
}

func (c *funcCounter) metricName() string { return c.name }
func (c *funcCounter) metricHelp() string { return c.help }
func (c *funcCounter) metricType() string { return "counter" }

// Gauge is a value that can go up and down. The zero value is
// unusable; obtain gauges from a Registry. All methods are safe for
// concurrent use and lock-free.
type Gauge struct {
	name, help string
	bits       atomic.Uint64 // float64 bits
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds d (negative to subtract) with a CAS loop.
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

func (g *Gauge) metricName() string { return g.name }
func (g *Gauge) metricHelp() string { return g.help }
func (g *Gauge) metricType() string { return "gauge" }

// funcGauge reads its value from a callback at exposition time.
type funcGauge struct {
	name, help string
	mu         sync.Mutex
	fn         func() float64
}

func (g *funcGauge) value() float64 {
	g.mu.Lock()
	fn := g.fn
	g.mu.Unlock()
	if fn == nil {
		return 0
	}
	return fn()
}

func (g *funcGauge) metricName() string { return g.name }
func (g *funcGauge) metricHelp() string { return g.help }
func (g *funcGauge) metricType() string { return "gauge" }

// DefBuckets are the default duration buckets: exponential from 1 µs
// to ~8.4 s (doubling), sized for this codebase's hot paths — a filter
// ingest is tens of microseconds, a mean-shift refresh tens of
// milliseconds, a WAL fsync hundreds of microseconds to tens of
// milliseconds.
var DefBuckets = ExpBuckets(1e-6, 2, 24)

// ExpBuckets returns n exponentially spaced bucket bounds starting at
// start and multiplying by factor.
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// LinearBuckets returns n linearly spaced bucket bounds starting at
// start with the given width.
func LinearBuckets(start, width float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}

// Histogram is a fixed-bucket histogram of float64 observations
// (durations in seconds, sizes in readings, ...). Observations are
// lock-free atomic adds; quantiles are estimated from the bucket
// counts by linear interpolation, so their error is bounded by the
// bucket width around the quantile. The zero value is unusable;
// obtain histograms from a Registry.
type Histogram struct {
	name, help string
	bounds     []float64       // sorted upper bounds; +Inf bucket implicit
	counts     []atomic.Uint64 // len(bounds)+1
	sumBits    atomic.Uint64   // float64 bits of the observation sum
	count      atomic.Uint64
}

func newHistogram(name, help string, buckets []float64) *Histogram {
	if len(buckets) == 0 {
		buckets = DefBuckets
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic("obs: histogram buckets must be sorted ascending")
		}
	}
	return &Histogram{
		name:   name,
		help:   help,
		bounds: append([]float64(nil), buckets...),
		counts: make([]atomic.Uint64, len(buckets)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// Binary search for the first bound ≥ v.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.counts[lo].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Quantile estimates the q-quantile (q in [0,1]) from the bucket
// counts by linear interpolation inside the containing bucket. It
// returns NaN with no observations. Mass in the +Inf bucket reports
// the highest finite bound — the estimate saturates rather than
// invents a value.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return math.NaN()
	}
	rank := q * float64(total)
	var cum float64
	for i := range h.counts {
		n := float64(h.counts[i].Load())
		if n == 0 {
			continue
		}
		if cum+n >= rank {
			if i == len(h.bounds) {
				return h.bounds[len(h.bounds)-1] // +Inf bucket: saturate
			}
			lower := 0.0
			if i > 0 {
				lower = h.bounds[i-1]
			}
			frac := (rank - cum) / n
			if frac < 0 {
				frac = 0
			}
			return lower + frac*(h.bounds[i]-lower)
		}
		cum += n
	}
	return h.bounds[len(h.bounds)-1]
}

// Summary is a histogram digest for reports and logs.
type Summary struct {
	// Count is the number of observations; Sum their total.
	Count uint64
	// Sum is the total of all observed values.
	Sum float64
	// P50, P95 and P99 are interpolated quantile estimates (NaN when
	// Count is 0).
	P50, P95, P99 float64
}

// Summary digests the histogram into count, sum and the standard
// quantiles.
func (h *Histogram) Summary() Summary {
	return Summary{
		Count: h.Count(),
		Sum:   h.Sum(),
		P50:   h.Quantile(0.50),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
	}
}

// bucketCounts returns the cumulative count per bound (Prometheus
// "le" semantics), plus the total.
func (h *Histogram) bucketCounts() (cum []uint64, total uint64) {
	cum = make([]uint64, len(h.bounds))
	var c uint64
	for i := range h.bounds {
		c += h.counts[i].Load()
		cum[i] = c
	}
	total = c + h.counts[len(h.bounds)].Load()
	return cum, total
}

func (h *Histogram) metricName() string { return h.name }
func (h *Histogram) metricHelp() string { return h.help }
func (h *Histogram) metricType() string { return "histogram" }
