package obs

import (
	"runtime"
	"time"
)

// RegisterProcessMetrics registers the standard process-level gauges —
// uptime, goroutine count, heap bytes and GC cycles — computed at
// scrape time. started anchors the uptime gauge (pass the process
// start instant).
func RegisterProcessMetrics(r *Registry, started time.Time) {
	r.GaugeFunc("radloc_process_uptime_seconds",
		"Seconds since the process started.",
		func() float64 { return time.Since(started).Seconds() })
	r.GaugeFunc("radloc_process_goroutines",
		"Current number of goroutines.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	r.GaugeFunc("radloc_process_heap_bytes",
		"Bytes of allocated heap objects (runtime.MemStats.HeapAlloc).",
		func() float64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return float64(ms.HeapAlloc)
		})
	r.CounterFunc("radloc_process_gc_cycles_total",
		"Completed GC cycles (runtime.MemStats.NumGC).",
		func() uint64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return uint64(ms.NumGC)
		})
}
