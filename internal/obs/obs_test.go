package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

// TestGetOrCreate asserts registration is idempotent per name and
// panics on kind mismatch.
func TestGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "help")
	b := r.Counter("x_total", "other help ignored")
	if a != b {
		t.Fatal("same name should return the same counter")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Fatalf("shared counter value = %d, want 1", b.Value())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("registering x_total as a gauge should panic")
		}
	}()
	r.Gauge("x_total", "kind mismatch")
}

// TestConcurrentIncrements hammers one counter, one gauge and one
// histogram from many goroutines; run under -race this is the
// registry's thread-safety proof, and the totals must still be exact.
func TestConcurrentIncrements(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("radloc_test_events_total", "events")
	g := r.Gauge("radloc_test_level", "level")
	h := r.Histogram("radloc_test_seconds", "latency", []float64{0.001, 0.01, 0.1, 1})
	fam := r.CounterFamily("radloc_test_labeled_total", "labeled", "kind")

	const workers = 16
	const perWorker = 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(0.005)
				fam.With("a").Inc()
				if w%2 == 0 {
					fam.With("b").Add(2)
				}
			}
		}(w)
	}
	wg.Wait()

	const n = workers * perWorker
	if got := c.Value(); got != n {
		t.Errorf("counter = %d, want %d", got, n)
	}
	if got := g.Value(); got != n {
		t.Errorf("gauge = %g, want %d", got, n)
	}
	if got := h.Count(); got != n {
		t.Errorf("histogram count = %d, want %d", got, n)
	}
	if got, want := h.Sum(), 0.005*n; math.Abs(got-want) > 1e-9*want {
		t.Errorf("histogram sum = %g, want %g", got, want)
	}
	if got := fam.With("a").Value(); got != n {
		t.Errorf("family[a] = %d, want %d", got, n)
	}
	if got := fam.With("b").Value(); got != workers/2*perWorker*2 {
		t.Errorf("family[b] = %d, want %d", got, workers/2*perWorker*2)
	}
}

// TestHistogramQuantiles checks the interpolation: for a uniform
// stream over [0, 100) with bucket width 10, every quantile estimate
// must land within one bucket width of the exact value.
func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q_test", "quantiles", LinearBuckets(10, 10, 10))
	for i := 0; i < 10000; i++ {
		h.Observe(float64(i%100) + 0.5)
	}
	for _, tc := range []struct{ q, want float64 }{
		{0.50, 50}, {0.95, 95}, {0.99, 99}, {0.10, 10},
	} {
		got := h.Quantile(tc.q)
		if math.Abs(got-tc.want) > 10 {
			t.Errorf("Quantile(%g) = %g, want within one bucket of %g", tc.q, got, tc.want)
		}
	}
	if !math.IsNaN(NewRegistry().Histogram("empty", "", nil).Quantile(0.5)) {
		t.Error("quantile of an empty histogram should be NaN")
	}

	// Mass beyond the last finite bound saturates at it.
	h2 := r.Histogram("q_sat", "saturation", []float64{1, 2})
	for i := 0; i < 100; i++ {
		h2.Observe(50)
	}
	if got := h2.Quantile(0.99); got != 2 {
		t.Errorf("overflowed quantile = %g, want saturation at 2", got)
	}
}

// TestSummary digests the quantiles in one call.
func TestSummary(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("s_test", "summary", LinearBuckets(1, 1, 100))
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i % 100))
	}
	s := h.Summary()
	if s.Count != 1000 {
		t.Errorf("Count = %d, want 1000", s.Count)
	}
	if s.P50 <= 0 || s.P95 < s.P50 || s.P99 < s.P95 {
		t.Errorf("quantiles not monotone: p50=%g p95=%g p99=%g", s.P50, s.P95, s.P99)
	}
}

// TestExpositionGolden locks the text format down byte for byte: a
// registry with one of each kind must render exactly this.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("radloc_demo_events_total", "Events seen.")
	c.Add(42)
	g := r.Gauge("radloc_demo_depth", "Queue depth.")
	g.Set(3.5)
	h := r.Histogram("radloc_demo_seconds", "Latency.", []float64{0.01, 0.1})
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(5)
	fam := r.CounterFamily("radloc_demo_stage_total", "Per-stage events.", "stage")
	fam.With("resample").Add(7)
	fam.With("predict").Inc()
	hf := r.HistogramFamily("radloc_demo_stage_seconds", "Per-stage latency.", []float64{1}, "stage")
	hf.With("predict").Observe(0.5)

	const want = `# HELP radloc_demo_depth Queue depth.
# TYPE radloc_demo_depth gauge
radloc_demo_depth 3.5
# HELP radloc_demo_events_total Events seen.
# TYPE radloc_demo_events_total counter
radloc_demo_events_total 42
# HELP radloc_demo_seconds Latency.
# TYPE radloc_demo_seconds histogram
radloc_demo_seconds_bucket{le="0.01"} 1
radloc_demo_seconds_bucket{le="0.1"} 2
radloc_demo_seconds_bucket{le="+Inf"} 3
radloc_demo_seconds_sum 5.055
radloc_demo_seconds_count 3
# HELP radloc_demo_stage_seconds Per-stage latency.
# TYPE radloc_demo_stage_seconds histogram
radloc_demo_stage_seconds_bucket{stage="predict",le="1"} 1
radloc_demo_stage_seconds_bucket{stage="predict",le="+Inf"} 1
radloc_demo_stage_seconds_sum{stage="predict"} 0.5
radloc_demo_stage_seconds_count{stage="predict"} 1
# HELP radloc_demo_stage_total Per-stage events.
# TYPE radloc_demo_stage_total counter
radloc_demo_stage_total{stage="predict"} 1
radloc_demo_stage_total{stage="resample"} 7
`
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if b.String() != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", b.String(), want)
	}
}

// TestFuncMetrics covers scrape-time callbacks and label escaping.
func TestFuncMetrics(t *testing.T) {
	r := NewRegistry()
	n := uint64(7)
	r.CounterFunc("fn_total", "callback counter", func() uint64 { return n })
	r.GaugeFunc("fn_gauge", "callback gauge", func() float64 { return 1.25 })
	f := r.GaugeFamily("esc_gauge", "label escaping", "path")
	f.With(`a"b\c` + "\n").Set(1)

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"fn_total 7\n",
		"fn_gauge 1.25\n",
		`esc_gauge{path="a\"b\\c\n"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

// TestLabeledView exercises Registry.With: plain registrations on a
// view must land as labeled family children on the root, two views of
// the same name must stay distinct, and exposition from the view must
// render the root's full contents with the view labels attached.
func TestLabeledView(t *testing.T) {
	r := NewRegistry()
	east := r.With("zone", "east")
	west := r.With("zone", "west")

	ce := east.Counter("radloc_view_ingested_total", "per-zone ingest")
	cw := west.Counter("radloc_view_ingested_total", "per-zone ingest")
	if ce == cw {
		t.Fatal("distinct zones must get distinct counters")
	}
	ce.Add(3)
	cw.Add(5)
	// Re-registration through the view returns the same child.
	if again := east.Counter("radloc_view_ingested_total", "per-zone ingest"); again != ce {
		t.Fatal("view registration should be get-or-create")
	}

	east.Gauge("radloc_view_depth", "mailbox depth").Set(7)
	east.Histogram("radloc_view_seconds", "latency", []float64{0.1, 1}).Observe(0.05)
	east.GaugeFunc("radloc_view_uptime", "uptime", func() float64 { return 42 })
	east.CounterFunc("radloc_view_ticks_total", "ticks", func() uint64 { return 9 })

	// A family obtained through a view prepends the view labels.
	sf := east.HistogramFamily("radloc_view_stage_seconds", "stage timing", []float64{0.1, 1}, "stage")
	sf.With("select").Observe(0.2)

	var b strings.Builder
	if err := east.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	for _, want := range []string{
		`radloc_view_ingested_total{zone="east"} 3`,
		`radloc_view_ingested_total{zone="west"} 5`,
		`radloc_view_depth{zone="east"} 7`,
		`radloc_view_seconds_count{zone="east"} 1`,
		`radloc_view_uptime{zone="east"} 42`,
		`radloc_view_ticks_total{zone="east"} 9`,
		`radloc_view_stage_seconds_count{zone="east",stage="select"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q\n%s", want, text)
		}
	}
}

// TestViewChaining asserts With composes: a view of a view carries
// both label pairs in order.
func TestViewChaining(t *testing.T) {
	r := NewRegistry()
	c := r.With("region", "eu").With("zone", "a").Counter("radloc_chain_total", "chained")
	c.Inc()
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if want := `radloc_chain_total{region="eu",zone="a"} 1`; !strings.Contains(b.String(), want) {
		t.Fatalf("missing %q in\n%s", want, b.String())
	}
}
