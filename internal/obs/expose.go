package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
)

// WriteText renders every registered metric in Prometheus text
// exposition format (version 0.0.4), families sorted by name and
// children by label tuple, so the output is deterministic for a given
// registry state.
func (r *Registry) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, m := range r.snapshot() {
		fmt.Fprintf(bw, "# HELP %s %s\n", m.metricName(), m.metricHelp())
		fmt.Fprintf(bw, "# TYPE %s %s\n", m.metricName(), m.metricType())
		switch v := m.(type) {
		case *Counter:
			fmt.Fprintf(bw, "%s %d\n", v.name, v.Value())
		case *funcCounter:
			fmt.Fprintf(bw, "%s %d\n", v.name, v.value())
		case *Gauge:
			fmt.Fprintf(bw, "%s %s\n", v.name, formatFloat(v.Value()))
		case *funcGauge:
			fmt.Fprintf(bw, "%s %s\n", v.name, formatFloat(v.value()))
		case *Histogram:
			writeHistogram(bw, v, "")
		case *CounterFamily:
			v.each(func(key string, c metric) {
				// Children are plain counters, or callback counters when a
				// labeled view registered a CounterFunc.
				switch cc := c.(type) {
				case *Counter:
					fmt.Fprintf(bw, "%s{%s} %d\n", v.name, key, cc.Value())
				case *funcCounter:
					fmt.Fprintf(bw, "%s{%s} %d\n", v.name, key, cc.value())
				}
			})
		case *GaugeFamily:
			v.each(func(key string, g metric) {
				switch gg := g.(type) {
				case *Gauge:
					fmt.Fprintf(bw, "%s{%s} %s\n", v.name, key, formatFloat(gg.Value()))
				case *funcGauge:
					fmt.Fprintf(bw, "%s{%s} %s\n", v.name, key, formatFloat(gg.value()))
				}
			})
		case *HistogramFamily:
			v.each(func(key string, h metric) {
				writeHistogram(bw, h.(*Histogram), key)
			})
		}
	}
	return bw.Flush()
}

// writeHistogram renders one histogram's _bucket/_sum/_count series;
// labels is the pre-rendered label body ("" for an unlabeled
// histogram) that le is appended to.
func writeHistogram(w io.Writer, h *Histogram, labels string) {
	sep := ""
	if labels != "" {
		sep = ","
	}
	cum, total := h.bucketCounts()
	for i, bound := range h.bounds {
		fmt.Fprintf(w, "%s_bucket{%s%sle=%q} %d\n", h.name, labels, sep, formatFloat(bound), cum[i])
	}
	fmt.Fprintf(w, "%s_bucket{%s%sle=\"+Inf\"} %d\n", h.name, labels, sep, total)
	if labels == "" {
		fmt.Fprintf(w, "%s_sum %s\n", h.name, formatFloat(h.Sum()))
		fmt.Fprintf(w, "%s_count %d\n", h.name, total)
	} else {
		fmt.Fprintf(w, "%s_sum{%s} %s\n", h.name, labels, formatFloat(h.Sum()))
		fmt.Fprintf(w, "%s_count{%s} %d\n", h.name, labels, total)
	}
}

// formatFloat renders a sample value the way Prometheus expects:
// shortest round-trip decimal, with explicit +Inf/-Inf/NaN spellings.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Handler serves the registry in text exposition format — mount it on
// GET /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			http.Error(w, "GET only", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WriteText(w)
	})
}
