// Package obs is the project's dependency-free observability layer: a
// concurrency-safe metrics registry of atomic counters, gauges and
// fixed-bucket histograms (with labeled families of each), plus
// Prometheus text-format exposition.
//
// Every long-running component takes a *Registry in its options; the
// daemon builds one Registry per process, threads it through the
// filter, the fusion engine, the HTTP ingest boundary and the WAL,
// and serves the whole thing on GET /metrics. Components built without
// a registry get a private one (or skip instrumentation entirely where
// the hot path warrants it), so tests stay isolated and libraries stay
// dependency-free.
//
// Naming follows the Prometheus convention specialized to this
// project: radloc_<subsystem>_<name>_<unit>, where unit is "seconds"
// for histograms of durations, "total" for monotone counters, and a
// bare noun for gauges. The full family reference lives in the README
// ("Monitoring radlocd") and DESIGN.md §8.
//
// Registration is get-or-create: asking twice for the same name
// returns the same collector, so a component rebuilt mid-process (the
// daemon's checkpoint-discard path builds its engine twice) reuses its
// counters instead of colliding. Asking for the same name as a
// different metric kind panics — that is a programming error, not a
// runtime condition.
package obs

import (
	"fmt"
	"sort"
	"sync"
)

// metric is one registered collector; expose.go renders each kind.
type metric interface {
	metricName() string
	metricHelp() string
	metricType() string // counter | gauge | histogram
}

// Registry holds named metrics and renders them in Prometheus text
// format. The zero value is not usable; call NewRegistry. All methods
// are safe for concurrent use.
//
// A Registry obtained from With is a labeled *view*: registrations on
// it land on the root registry as labeled families carrying the view's
// preset label values, so a component written against plain Counter/
// Gauge/Histogram calls gains labels (e.g. zone="east") without
// changing a line. Exposition always renders the root's full contents.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]metric
	names   []string // registration order; sorted at exposition

	// View state: non-nil base marks this Registry as a labeled view of
	// base, with labelNames/labelValues preset on every registration.
	base        *Registry
	labelNames  []string
	labelValues []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]metric)}
}

// With returns a labeled view of the registry: every collector
// registered through the view becomes a child of a labeled family on
// the root registry, carrying label=value (plus any labels already
// preset on r, so views chain). Components that take a *Registry can
// therefore be instantiated once per shard/zone, each landing on the
// same families distinguished by label — the multi-zone daemon builds
// each zone's engine on reg.With("zone", name).
func (r *Registry) With(label, value string) *Registry {
	root := r
	var names, values []string
	if r.base != nil {
		root = r.base
		names = append(names, r.labelNames...)
		values = append(values, r.labelValues...)
	}
	return &Registry{
		base:        root,
		labelNames:  append(names, label),
		labelValues: append(values, value),
	}
}

// lookup returns the existing metric under name after checking its
// kind, or registers the one built by mk. Kind mismatches panic:
// reusing a metric name for a different type is a programming error.
func (r *Registry) lookup(name, kind string, mk func() metric) metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		if m.metricType() != kind {
			panic(fmt.Sprintf("obs: %q already registered as a %s, not a %s", name, m.metricType(), kind))
		}
		return m
	}
	m := mk()
	r.metrics[name] = m
	r.names = append(r.names, name)
	return m
}

// Counter returns the counter registered under name, creating it on
// first use. On a labeled view it is the view-labeled child of a
// counter family on the root.
func (r *Registry) Counter(name, help string) *Counter {
	if r.base != nil {
		return r.base.CounterFamily(name, help, r.labelNames...).With(r.labelValues...)
	}
	return r.lookup(name, "counter", func() metric {
		return &Counter{name: name, help: help}
	}).(*Counter)
}

// Gauge returns the gauge registered under name, creating it on first
// use. On a labeled view it is the view-labeled child of a gauge
// family on the root.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r.base != nil {
		return r.base.GaugeFamily(name, help, r.labelNames...).With(r.labelValues...)
	}
	return r.lookup(name, "gauge", func() metric {
		return &Gauge{name: name, help: help}
	}).(*Gauge)
}

// GaugeFunc registers a gauge whose value is computed by fn at
// exposition time — for values another component already tracks
// (queue depths, uptime, runtime stats). fn must be safe to call from
// any goroutine. Re-registering the same name replaces the function.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	var m metric
	if r.base != nil {
		f := r.base.GaugeFamily(name, help, r.labelNames...)
		m = f.child(r.labelValues, func() metric { return &funcGauge{name: name, help: help} })
	} else {
		m = r.lookup(name, "gauge", func() metric {
			return &funcGauge{name: name, help: help}
		})
	}
	fg, ok := m.(*funcGauge)
	if !ok {
		panic(fmt.Sprintf("obs: %q already registered as a plain gauge, not a gauge func", name))
	}
	fg.mu.Lock()
	fg.fn = fn
	fg.mu.Unlock()
}

// CounterFunc registers a counter whose value is read from fn at
// exposition time — for monotone values another component already
// tracks (e.g. the circuit breaker's trip count). fn must be safe to
// call from any goroutine and must never decrease. Re-registering the
// same name replaces the function.
func (r *Registry) CounterFunc(name, help string, fn func() uint64) {
	var m metric
	if r.base != nil {
		f := r.base.CounterFamily(name, help, r.labelNames...)
		m = f.child(r.labelValues, func() metric { return &funcCounter{name: name, help: help} })
	} else {
		m = r.lookup(name, "counter", func() metric {
			return &funcCounter{name: name, help: help}
		})
	}
	fc, ok := m.(*funcCounter)
	if !ok {
		panic(fmt.Sprintf("obs: %q already registered as a plain counter, not a counter func", name))
	}
	fc.mu.Lock()
	fc.fn = fn
	fc.mu.Unlock()
}

// Histogram returns the histogram registered under name, creating it
// with the given bucket upper bounds on first use (a final +Inf bucket
// is implicit; pass nil for DefBuckets). Buckets must be sorted
// ascending. On a labeled view it is the view-labeled child of a
// histogram family on the root.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if r.base != nil {
		return r.base.HistogramFamily(name, help, buckets, r.labelNames...).With(r.labelValues...)
	}
	return r.lookup(name, "histogram", func() metric {
		return newHistogram(name, help, buckets)
	}).(*Histogram)
}

// CounterFamily returns the labeled counter family registered under
// name, creating it on first use with the given label names. On a
// labeled view the view's labels are prepended to the family's and
// With supplies only the trailing (family-local) values.
func (r *Registry) CounterFamily(name, help string, labels ...string) *CounterFamily {
	if r.base != nil {
		f := r.base.CounterFamily(name, help, append(append([]string{}, r.labelNames...), labels...)...)
		return &CounterFamily{family: f.family, bound: r.labelValues}
	}
	return r.lookup(name, "counter", func() metric {
		return &CounterFamily{family: newFamily(name, help, labels)}
	}).(*CounterFamily)
}

// GaugeFamily returns the labeled gauge family registered under name,
// creating it on first use with the given label names. Views prepend
// their labels as for CounterFamily.
func (r *Registry) GaugeFamily(name, help string, labels ...string) *GaugeFamily {
	if r.base != nil {
		f := r.base.GaugeFamily(name, help, append(append([]string{}, r.labelNames...), labels...)...)
		return &GaugeFamily{family: f.family, bound: r.labelValues}
	}
	return r.lookup(name, "gauge", func() metric {
		return &GaugeFamily{family: newFamily(name, help, labels)}
	}).(*GaugeFamily)
}

// HistogramFamily returns the labeled histogram family registered
// under name, creating it on first use with the given buckets and
// label names. Views prepend their labels as for CounterFamily.
func (r *Registry) HistogramFamily(name, help string, buckets []float64, labels ...string) *HistogramFamily {
	if r.base != nil {
		f := r.base.HistogramFamily(name, help, buckets, append(append([]string{}, r.labelNames...), labels...)...)
		return &HistogramFamily{family: f.family, buckets: f.buckets, bound: r.labelValues}
	}
	return r.lookup(name, "histogram", func() metric {
		return &HistogramFamily{family: newFamily(name, help, labels), buckets: buckets}
	}).(*HistogramFamily)
}

// snapshot returns the registered metrics sorted by name. A view
// snapshots its root: exposition always covers the whole process.
func (r *Registry) snapshot() []metric {
	if r.base != nil {
		return r.base.snapshot()
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := append([]string(nil), r.names...)
	sort.Strings(names)
	out := make([]metric, 0, len(names))
	for _, n := range names {
		out = append(out, r.metrics[n])
	}
	return out
}
