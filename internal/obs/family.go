package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// family is the shared machinery behind labeled metric families: a
// fixed set of label names, and one child collector per label-value
// tuple, created on first use.
type family struct {
	name, help string
	labels     []string
	mu         sync.Mutex
	children   map[string]metric // label-tuple key → child
	keys       []string          // insertion order; sorted at exposition
}

func newFamily(name, help string, labels []string) *family {
	if len(labels) == 0 {
		panic(fmt.Sprintf("obs: family %q needs at least one label", name))
	}
	return &family{name: name, help: help, labels: labels, children: make(map[string]metric)}
}

// key builds the child map key from the label values (also the
// rendered label body, so exposition needs no re-derivation).
func (f *family) key(values []string) string {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: family %q wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	var b strings.Builder
	for i, v := range values {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(f.labels[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabel(v))
		b.WriteByte('"')
	}
	return b.String()
}

// child returns the collector for the label tuple, creating it with mk
// on first use.
func (f *family) child(values []string, mk func() metric) metric {
	k := f.key(values)
	f.mu.Lock()
	defer f.mu.Unlock()
	if m, ok := f.children[k]; ok {
		return m
	}
	m := mk()
	f.children[k] = m
	f.keys = append(f.keys, k)
	return m
}

// each visits children in sorted key order.
func (f *family) each(visit func(key string, m metric)) {
	f.mu.Lock()
	keys := append([]string(nil), f.keys...)
	children := make([]metric, len(keys))
	sort.Strings(keys)
	for i, k := range keys {
		children[i] = f.children[k]
	}
	f.mu.Unlock()
	for i, k := range keys {
		visit(k, children[i])
	}
}

func (f *family) metricName() string { return f.name }
func (f *family) metricHelp() string { return f.help }

// escapeLabel escapes a label value per the Prometheus text format.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// withBound prepends a handle's preset label values (from a labeled
// registry view) to the values supplied at the With call site.
func withBound(bound, values []string) []string {
	if len(bound) == 0 {
		return values
	}
	return append(append(make([]string, 0, len(bound)+len(values)), bound...), values...)
}

// CounterFamily is a set of counters distinguished by label values
// (e.g. one counter per HTTP status class). Obtain families from a
// Registry; children are created on first use and live forever. A
// family obtained through a labeled view carries the view's label
// values pre-bound, so With supplies only the trailing values.
type CounterFamily struct {
	*family
	bound []string // preset leading label values (labeled views)
}

// With returns the child counter for the given label values (in the
// family's label-name order).
func (f *CounterFamily) With(values ...string) *Counter {
	return f.child(withBound(f.bound, values), func() metric { return &Counter{name: f.name} }).(*Counter)
}

func (f *CounterFamily) metricType() string { return "counter" }

// GaugeFamily is a set of gauges distinguished by label values.
type GaugeFamily struct {
	*family
	bound []string // preset leading label values (labeled views)
}

// With returns the child gauge for the given label values.
func (f *GaugeFamily) With(values ...string) *Gauge {
	return f.child(withBound(f.bound, values), func() metric { return &Gauge{name: f.name} }).(*Gauge)
}

func (f *GaugeFamily) metricType() string { return "gauge" }

// HistogramFamily is a set of histograms sharing one bucket layout,
// distinguished by label values (e.g. one histogram per filter stage).
type HistogramFamily struct {
	*family
	buckets []float64
	bound   []string // preset leading label values (labeled views)
}

// With returns the child histogram for the given label values.
func (f *HistogramFamily) With(values ...string) *Histogram {
	return f.child(withBound(f.bound, values), func() metric { return newHistogram(f.name, f.help, f.buckets) }).(*Histogram)
}

func (f *HistogramFamily) metricType() string { return "histogram" }
