package report

import (
	"errors"
	"math"
	"strings"
	"testing"
)

func sampleTable(t *testing.T) *Table {
	t.Helper()
	tb := NewTable("Localization error", "step", "err", "fp")
	if err := tb.AddRow(0, 5.25, 2); err != nil {
		t.Fatal(err)
	}
	if err := tb.AddRow(1, math.NaN(), 1); err != nil {
		t.Fatal(err)
	}
	if err := tb.AddRow(2, 1.0, 0); err != nil {
		t.Fatal(err)
	}
	return tb
}

func TestAddRowShapeError(t *testing.T) {
	tb := NewTable("t", "a", "b")
	if err := tb.AddRow(1); !errors.Is(err, ErrShape) {
		t.Errorf("short row: %v", err)
	}
	if err := tb.AddRow(1, 2, 3); !errors.Is(err, ErrShape) {
		t.Errorf("long row: %v", err)
	}
}

func TestFormatVariants(t *testing.T) {
	tb := NewTable("t", "c")
	_ = tb.AddRow(float32(2.5))
	_ = tb.AddRow("text")
	_ = tb.AddRow(42)
	if tb.Row(0)[0] != "2.500" {
		t.Errorf("float32: %q", tb.Row(0)[0])
	}
	if tb.Row(1)[0] != "text" {
		t.Errorf("string: %q", tb.Row(1)[0])
	}
	if tb.Row(2)[0] != "42" {
		t.Errorf("int: %q", tb.Row(2)[0])
	}
}

func TestWriteCSV(t *testing.T) {
	var b strings.Builder
	if err := sampleTable(t).WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	want := "# Localization error\nstep,err,fp\n0,5.250,2\n1,NA,1\n2,1.000,0\n"
	if out != want {
		t.Errorf("CSV:\n%q\nwant:\n%q", out, want)
	}
}

func TestCSVEscaping(t *testing.T) {
	tb := NewTable("", "name")
	_ = tb.AddRow(`a,"b"`)
	var b strings.Builder
	if err := tb.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `"a,""b"""`) {
		t.Errorf("escaping wrong: %q", b.String())
	}
}

func TestWriteMarkdown(t *testing.T) {
	var b strings.Builder
	if err := sampleTable(t).WriteMarkdown(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "### Localization error") {
		t.Error("title missing")
	}
	if !strings.Contains(out, "| step | err | fp |") {
		t.Error("header row wrong")
	}
	if !strings.Contains(out, "| --- | --- | --- |") {
		t.Error("separator missing")
	}
	if !strings.Contains(out, "| 1 | NA | 1 |") {
		t.Error("NA row missing")
	}
}

func TestMarkdownEscapesPipes(t *testing.T) {
	tb := NewTable("", "c")
	_ = tb.AddRow("a|b")
	var b strings.Builder
	if err := tb.WriteMarkdown(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `a\|b`) {
		t.Errorf("pipe not escaped: %q", b.String())
	}
}

func TestWriteGnuplot(t *testing.T) {
	var b strings.Builder
	err := sampleTable(t).WriteGnuplot(&b,
		GnuplotSeries{XColumn: "step", YColumn: "err", Label: "error"},
		GnuplotSeries{XColumn: "step", YColumn: "fp"},
	)
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`set datafile missing "NA"`,
		"$data << EOD",
		"using 1:2 with linespoints title \"error\"",
		"using 1:3 with linespoints title \"fp\"",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("gnuplot missing %q:\n%s", want, out)
		}
	}
}

func TestWriteGnuplotErrors(t *testing.T) {
	tb := sampleTable(t)
	var b strings.Builder
	if err := tb.WriteGnuplot(&b); err == nil {
		t.Error("no series accepted")
	}
	if err := tb.WriteGnuplot(&b, GnuplotSeries{XColumn: "nope", YColumn: "err"}); err == nil {
		t.Error("unknown x column accepted")
	}
	if err := tb.WriteGnuplot(&b, GnuplotSeries{XColumn: "step", YColumn: "nope"}); err == nil {
		t.Error("unknown y column accepted")
	}
}

func TestRowIsCopy(t *testing.T) {
	tb := sampleTable(t)
	r := tb.Row(0)
	r[0] = "mutated"
	if tb.Row(0)[0] == "mutated" {
		t.Error("Row exposes internal storage")
	}
	if tb.NumRows() != 3 {
		t.Errorf("NumRows = %d", tb.NumRows())
	}
}
