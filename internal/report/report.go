// Package report renders experiment results as CSV, Markdown tables,
// and gnuplot scripts, so every figure the CLI regenerates can go
// straight into a terminal, a README, or a plot. One Table value feeds
// all three writers.
package report

import (
	"errors"
	"fmt"
	"io"
	"math"
	"strings"
)

// NA is how missing values (false negatives, empty cells) are rendered.
const NA = "NA"

// ErrShape is returned when a row's width does not match the header.
var ErrShape = errors.New("report: row width does not match header")

// Table is a rectangular result set with named columns.
type Table struct {
	Title   string
	Columns []string
	rows    [][]string
}

// NewTable creates a table with the given title and column names.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row of arbitrary values; floats are formatted with
// three decimals and NaN becomes NA.
func (t *Table) AddRow(values ...any) error {
	if len(values) != len(t.Columns) {
		return fmt.Errorf("%w: %d values for %d columns", ErrShape, len(values), len(t.Columns))
	}
	row := make([]string, len(values))
	for i, v := range values {
		row[i] = format(v)
	}
	t.rows = append(t.rows, row)
	return nil
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// Row returns a copy of row i.
func (t *Table) Row(i int) []string {
	out := make([]string, len(t.rows[i]))
	copy(out, t.rows[i])
	return out
}

func format(v any) string {
	switch x := v.(type) {
	case float64:
		if math.IsNaN(x) {
			return NA
		}
		return fmt.Sprintf("%.3f", x)
	case float32:
		return format(float64(x))
	case string:
		return x
	case fmt.Stringer:
		return x.String()
	default:
		return fmt.Sprintf("%v", v)
	}
}

// WriteCSV renders the table as a comment header plus CSV rows.
func (t *Table) WriteCSV(w io.Writer) error {
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "# %s\n", t.Title); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w, strings.Join(t.Columns, ",")); err != nil {
		return err
	}
	for _, row := range t.rows {
		if _, err := fmt.Fprintln(w, strings.Join(escapeAll(row, csvEscape), ",")); err != nil {
			return err
		}
	}
	return nil
}

// WriteMarkdown renders the table as a GitHub-flavored Markdown table.
func (t *Table) WriteMarkdown(w io.Writer) error {
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "### %s\n\n", t.Title); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(escapeAll(t.Columns, mdEscape), " | ")); err != nil {
		return err
	}
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = "---"
	}
	if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(sep, " | ")); err != nil {
		return err
	}
	for _, row := range t.rows {
		if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(escapeAll(row, mdEscape), " | ")); err != nil {
			return err
		}
	}
	return nil
}

// GnuplotSeries describes one plotted series for WriteGnuplot.
type GnuplotSeries struct {
	// XColumn and YColumn are column names of the table.
	XColumn, YColumn string
	// Label overrides the legend entry (default YColumn).
	Label string
}

// WriteGnuplot emits a self-contained gnuplot script with the data
// inlined ($data heredoc), plotting the given series as lines+points.
func (t *Table) WriteGnuplot(w io.Writer, series ...GnuplotSeries) error {
	if len(series) == 0 {
		return errors.New("report: no series to plot")
	}
	colIdx := make(map[string]int, len(t.Columns))
	for i, c := range t.Columns {
		colIdx[c] = i + 1 // gnuplot columns are 1-based
	}
	for _, s := range series {
		if _, ok := colIdx[s.XColumn]; !ok {
			return fmt.Errorf("report: unknown x column %q", s.XColumn)
		}
		if _, ok := colIdx[s.YColumn]; !ok {
			return fmt.Errorf("report: unknown y column %q", s.YColumn)
		}
	}

	fmt.Fprintf(w, "set title %q\n", t.Title)
	fmt.Fprintln(w, "set datafile missing \"NA\"")
	fmt.Fprintln(w, "set key outside")
	fmt.Fprintln(w, "$data << EOD")
	fmt.Fprintln(w, strings.Join(t.Columns, " "))
	for _, row := range t.rows {
		fmt.Fprintln(w, strings.Join(escapeAll(row, gnuplotEscape), " "))
	}
	fmt.Fprintln(w, "EOD")

	var plots []string
	for _, s := range series {
		label := s.Label
		if label == "" {
			label = s.YColumn
		}
		plots = append(plots, fmt.Sprintf("$data using %d:%d with linespoints title %q",
			colIdx[s.XColumn], colIdx[s.YColumn], label))
	}
	_, err := fmt.Fprintf(w, "plot %s\n", strings.Join(plots, ", \\\n     "))
	return err
}

func escapeAll(in []string, esc func(string) string) []string {
	out := make([]string, len(in))
	for i, s := range in {
		out[i] = esc(s)
	}
	return out
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

func mdEscape(s string) string {
	return strings.ReplaceAll(s, "|", `\|`)
}

func gnuplotEscape(s string) string {
	return strings.ReplaceAll(s, " ", "_")
}
