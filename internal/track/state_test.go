package track

import (
	"encoding/json"
	"reflect"
	"testing"

	"radloc/internal/core"
	"radloc/internal/geometry"
)

// TestStateRoundTrip: export mid-stream, restore into a fresh manager,
// continue both with identical estimate sets — the track sets must
// stay identical.
func TestStateRoundTrip(t *testing.T) {
	ests := func(step int) []core.Estimate {
		out := []core.Estimate{{Pos: geometry.V(20+float64(step%3), 30), Strength: 40, Mass: 0.5}}
		if step >= 2 && step <= 6 {
			out = append(out, core.Estimate{Pos: geometry.V(70, 75), Strength: 20, Mass: 0.3})
		}
		return out
	}

	orig := NewManager(Config{})
	for step := 0; step < 5; step++ {
		orig.Update(step, ests(step))
	}
	st := orig.ExportState()
	blob, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	var st2 State
	if err := json.Unmarshal(blob, &st2); err != nil {
		t.Fatal(err)
	}
	restored := NewManager(Config{})
	restored.ImportState(st2)

	for step := 5; step < 12; step++ {
		orig.Update(step, ests(step))
		restored.Update(step, ests(step))
	}
	if !reflect.DeepEqual(orig.All(), restored.All()) {
		t.Fatalf("track sets diverged:\n%v\nvs\n%v", orig.All(), restored.All())
	}
	if !reflect.DeepEqual(orig.Confirmed(), restored.Confirmed()) {
		t.Fatal("confirmed sets diverged")
	}
}

func TestImportStateEmpty(t *testing.T) {
	m := NewManager(Config{})
	m.ImportState(State{})
	m.Update(0, []core.Estimate{{Pos: geometry.V(1, 1), Strength: 10, Mass: 1}})
	if got := m.All(); len(got) != 1 || got[0].ID != 1 {
		t.Fatalf("IDs must restart at 1 after empty import, got %v", got)
	}
}
