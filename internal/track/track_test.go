package track

import (
	"testing"

	"radloc/internal/core"
	"radloc/internal/geometry"
	"radloc/internal/rng"
	"radloc/internal/sensor"
)

func est(x, y, s float64) core.Estimate {
	return core.Estimate{Pos: geometry.V(x, y), Strength: s, Mass: 0.2}
}

func TestTrackConfirmation(t *testing.T) {
	m := NewManager(Config{})
	for step := 0; step < 3; step++ {
		m.Update(step, []core.Estimate{est(50, 50, 20)})
		if step < 2 && len(m.Confirmed()) != 0 {
			t.Fatalf("confirmed before %d hits", step+1)
		}
	}
	conf := m.Confirmed()
	if len(conf) != 1 {
		t.Fatalf("confirmed = %d, want 1", len(conf))
	}
	if conf[0].Hits != 3 || !conf[0].Confirmed {
		t.Errorf("track = %+v", conf[0])
	}
	if conf[0].Pos.Dist(geometry.V(50, 50)) > 1e-9 {
		t.Errorf("stationary track drifted: %v", conf[0].Pos)
	}
}

func TestSpuriousFlickerSuppressed(t *testing.T) {
	m := NewManager(Config{})
	// A stable source plus a one-step spurious mode.
	m.Update(0, []core.Estimate{est(50, 50, 20), est(10, 90, 5)})
	for step := 1; step < 6; step++ {
		m.Update(step, []core.Estimate{est(50, 50, 20)})
	}
	conf := m.Confirmed()
	if len(conf) != 1 {
		t.Fatalf("confirmed = %v, want only the stable source", conf)
	}
	if conf[0].Pos.Dist(geometry.V(50, 50)) > 1 {
		t.Errorf("wrong track confirmed: %v", conf[0])
	}
	// The spurious track must be gone entirely after DropMisses steps.
	for _, tr := range m.All() {
		if tr.Pos.Dist(geometry.V(10, 90)) < 5 {
			t.Errorf("spurious track still alive: %v", tr)
		}
	}
}

func TestTrackSurvivesBriefDropout(t *testing.T) {
	m := NewManager(Config{})
	for step := 0; step < 4; step++ {
		m.Update(step, []core.Estimate{est(30, 30, 10)})
	}
	// Two missed steps (fewer than DropMisses=4): track must survive.
	m.Update(4, nil)
	m.Update(5, nil)
	if len(m.Confirmed()) != 1 {
		t.Fatal("track dropped during brief dropout")
	}
	m.Update(6, []core.Estimate{est(30, 30, 10)})
	conf := m.Confirmed()
	if len(conf) != 1 || conf[0].Misses != 0 {
		t.Errorf("track did not recover: %+v", conf)
	}
	// Four consecutive misses retire it.
	for step := 7; step < 11; step++ {
		m.Update(step, nil)
	}
	if len(m.All()) != 0 {
		t.Errorf("track not retired: %v", m.All())
	}
}

func TestTrackFollowsMovingEstimate(t *testing.T) {
	m := NewManager(Config{Alpha: 0.6})
	pos := geometry.V(20, 20)
	var id int
	for step := 0; step < 12; step++ {
		m.Update(step, []core.Estimate{{Pos: pos, Strength: 10, Mass: 0.2}})
		if step == 0 {
			id = m.All()[0].ID
		}
		pos = pos.Add(geometry.V(2, 1))
	}
	conf := m.Confirmed()
	if len(conf) != 1 {
		t.Fatalf("confirmed = %d", len(conf))
	}
	if conf[0].ID != id {
		t.Errorf("track identity changed while moving: %d vs %d", conf[0].ID, id)
	}
	// The smoothed position lags but stays within a couple of steps.
	if conf[0].Pos.Dist(pos) > 10 {
		t.Errorf("track lost the moving estimate: %v vs %v", conf[0].Pos, pos)
	}
}

func TestTwoSourcesKeepSeparateTracks(t *testing.T) {
	m := NewManager(Config{})
	for step := 0; step < 5; step++ {
		m.Update(step, []core.Estimate{est(47, 71, 50), est(81, 42, 50)})
	}
	conf := m.Confirmed()
	if len(conf) != 2 {
		t.Fatalf("confirmed = %d, want 2", len(conf))
	}
	if conf[0].ID == conf[1].ID {
		t.Error("duplicate track IDs")
	}
	tr, ok := m.NearestConfirmed(geometry.V(80, 40))
	if !ok || tr.Pos.Dist(geometry.V(81, 42)) > 1 {
		t.Errorf("NearestConfirmed = %v, %v", tr, ok)
	}
}

func TestNearestConfirmedEmpty(t *testing.T) {
	m := NewManager(Config{})
	if _, ok := m.NearestConfirmed(geometry.V(0, 0)); ok {
		t.Error("NearestConfirmed on empty manager returned ok")
	}
}

func TestGateRadiusSeparatesCloseEstimates(t *testing.T) {
	m := NewManager(Config{GateRadius: 5})
	m.Update(0, []core.Estimate{est(50, 50, 10)})
	// An estimate 8 away exceeds the gate: becomes a new track.
	m.Update(1, []core.Estimate{est(58, 50, 10)})
	if n := len(m.All()); n != 2 {
		t.Errorf("tracks = %d, want 2 (gate violation)", n)
	}
}

// TestEndToEndWithLocalizer runs tracks over a real localizer's noisy
// estimate stream: confirmed tracks must settle on exactly the two true
// sources even though raw estimates include flickering FPs.
func TestEndToEndWithLocalizer(t *testing.T) {
	loc, err := core.NewLocalizer(core.Config{
		Bounds:  geometry.NewRect(geometry.V(0, 0), geometry.V(100, 100)),
		Seed:    4,
		Workers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	m := NewManager(Config{})
	truth := []geometry.Vec{geometry.V(47, 71), geometry.V(81, 42)}

	bounds := geometry.NewRect(geometry.V(0, 0), geometry.V(100, 100))
	sensors := sensor.Grid(bounds, 6, 6, sensor.DefaultEfficiency, 5)
	stream := rng.NewNamed(4, "track/e2e")
	for step := 0; step < 12; step++ {
		for _, sn := range sensors {
			lambda := sn.Background
			for _, src := range truth {
				lambda += 2.22e6 * sn.Efficiency * 50 / (1 + sn.Pos.Dist2(src))
			}
			loc.Ingest(sn, stream.Poisson(lambda))
		}
		m.Update(step, loc.Estimates())
	}

	conf := m.Confirmed()
	matched := 0
	for _, want := range truth {
		if tr, ok := m.NearestConfirmed(want); ok && tr.Pos.Dist(want) < 6 {
			matched++
		}
	}
	if matched != 2 {
		t.Errorf("confirmed tracks %v do not cover both sources", conf)
	}
	// Long-lived confirmed tracks should be at most the two sources
	// plus possibly one persistent ambiguity.
	longLived := 0
	for _, tr := range conf {
		if tr.Hits >= 8 {
			longLived++
		}
	}
	if longLived > 3 {
		t.Errorf("%d long-lived tracks, want ≤ 3: %v", longLived, conf)
	}
}
