// Package track maintains persistent source tracks over the
// localizer's per-step estimate sets. Raw mean-shift modes flicker —
// spurious modes appear for a step or two and real sources occasionally
// drop out — so an operator consumes *tracks*: estimates associated
// across time, confirmed after repeated hits, and retired after
// repeated misses. This is the standard M-of-N track management layer
// on top of the paper's estimator.
package track

import (
	"fmt"
	"math"
	"sort"

	"radloc/internal/core"
	"radloc/internal/geometry"
)

// Config tunes track management; zero values take the documented
// defaults.
type Config struct {
	// GateRadius is the maximum distance between a track and an
	// estimate for association (default 15 length units).
	GateRadius float64
	// Alpha is the exponential smoothing factor applied to position and
	// strength on update; 1 means "use the newest estimate verbatim"
	// (default 0.5).
	Alpha float64
	// ConfirmHits is the number of associations before a track is
	// reported (default 3).
	ConfirmHits int
	// DropMisses is the number of consecutive unmatched steps after
	// which a track is retired (default 4).
	DropMisses int
}

func (c Config) withDefaults() Config {
	if c.GateRadius <= 0 {
		c.GateRadius = 15
	}
	if c.Alpha <= 0 || c.Alpha > 1 {
		c.Alpha = 0.5
	}
	if c.ConfirmHits <= 0 {
		c.ConfirmHits = 3
	}
	if c.DropMisses <= 0 {
		c.DropMisses = 4
	}
	return c
}

// Track is one hypothesized persistent source.
type Track struct {
	ID        int
	Pos       geometry.Vec // smoothed position
	Strength  float64      // smoothed strength (µCi)
	FirstStep int
	LastSeen  int
	Hits      int
	Misses    int // consecutive missed steps
	Confirmed bool
}

// String implements fmt.Stringer.
func (t Track) String() string {
	state := "tentative"
	if t.Confirmed {
		state = "confirmed"
	}
	return fmt.Sprintf("track %d (%s): %.4g µCi at %v, hits %d", t.ID, state, t.Strength, t.Pos, t.Hits)
}

// Manager associates estimate sets to tracks step by step. The zero
// value is not usable; construct with NewManager.
type Manager struct {
	cfg    Config
	tracks []Track
	nextID int
}

// NewManager creates a track manager.
func NewManager(cfg Config) *Manager {
	return &Manager{cfg: cfg.withDefaults(), nextID: 1}
}

// Update folds one step's estimates into the track set: estimates are
// greedily matched to the nearest track within the gate; matched tracks
// are smoothed toward the estimate; unmatched estimates open tentative
// tracks; unmatched tracks accumulate misses and are retired at
// DropMisses.
func (m *Manager) Update(step int, ests []core.Estimate) {
	type pair struct {
		d     float64
		track int
		est   int
	}
	var pairs []pair
	for ti := range m.tracks {
		for ei := range ests {
			if d := m.tracks[ti].Pos.Dist(ests[ei].Pos); d <= m.cfg.GateRadius {
				pairs = append(pairs, pair{d: d, track: ti, est: ei})
			}
		}
	}
	sort.Slice(pairs, func(a, b int) bool { return pairs[a].d < pairs[b].d })

	trackUsed := make([]bool, len(m.tracks))
	estUsed := make([]bool, len(ests))
	for _, p := range pairs {
		if trackUsed[p.track] || estUsed[p.est] {
			continue
		}
		trackUsed[p.track] = true
		estUsed[p.est] = true
		m.hit(&m.tracks[p.track], step, ests[p.est])
	}
	for ti := range m.tracks {
		if !trackUsed[ti] {
			m.tracks[ti].Misses++
		}
	}
	for ei := range ests {
		if !estUsed[ei] {
			m.tracks = append(m.tracks, Track{
				ID:        m.nextID,
				Pos:       ests[ei].Pos,
				Strength:  ests[ei].Strength,
				FirstStep: step,
				LastSeen:  step,
				Hits:      1,
			})
			m.nextID++
		}
	}

	// Retire tracks that have missed too long.
	kept := m.tracks[:0]
	for _, t := range m.tracks {
		if t.Misses < m.cfg.DropMisses {
			kept = append(kept, t)
		}
	}
	m.tracks = kept
}

func (m *Manager) hit(t *Track, step int, e core.Estimate) {
	a := m.cfg.Alpha
	t.Pos = geometry.V(t.Pos.X+(e.Pos.X-t.Pos.X)*a, t.Pos.Y+(e.Pos.Y-t.Pos.Y)*a)
	t.Strength += (e.Strength - t.Strength) * a
	t.LastSeen = step
	t.Hits++
	t.Misses = 0
	if t.Hits >= m.cfg.ConfirmHits {
		t.Confirmed = true
	}
}

// State is a serializable snapshot of a Manager, for checkpointed
// crash recovery. Track fields are all exported, so the track set
// round-trips through JSON unchanged.
type State struct {
	NextID int     `json:"nextId"`
	Tracks []Track `json:"tracks,omitempty"`
}

// ExportState captures the manager's resumable state.
func (m *Manager) ExportState() State {
	return State{
		NextID: m.nextID,
		Tracks: append([]Track(nil), m.tracks...),
	}
}

// ImportState restores a snapshot captured by ExportState.
func (m *Manager) ImportState(st State) {
	m.nextID = st.NextID
	if m.nextID < 1 {
		m.nextID = 1
	}
	m.tracks = append(m.tracks[:0], st.Tracks...)
}

// Confirmed returns the confirmed tracks, most-hit first.
func (m *Manager) Confirmed() []Track {
	var out []Track
	for _, t := range m.tracks {
		if t.Confirmed {
			out = append(out, t)
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Hits != out[b].Hits {
			return out[a].Hits > out[b].Hits
		}
		return out[a].ID < out[b].ID
	})
	return out
}

// All returns every live track (confirmed and tentative), by ID.
func (m *Manager) All() []Track {
	out := make([]Track, len(m.tracks))
	copy(out, m.tracks)
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}

// NearestConfirmed returns the confirmed track closest to p, or ok =
// false when there is none.
func (m *Manager) NearestConfirmed(p geometry.Vec) (Track, bool) {
	best := math.Inf(1)
	var bestT Track
	found := false
	for _, t := range m.tracks {
		if !t.Confirmed {
			continue
		}
		if d := t.Pos.Dist(p); d < best {
			best = d
			bestT = t
			found = true
		}
	}
	return bestT, found
}
