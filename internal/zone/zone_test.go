package zone

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"radloc/internal/fusion"
	"radloc/internal/obs"
	"radloc/internal/rng"
	"radloc/internal/scenario"
	"radloc/internal/sim"
)

// testEngine builds a small, deterministic engine for zone tests;
// seed varies per zone so cross-zone state can never accidentally
// match.
func testEngine(t testing.TB, seed uint64) *fusion.Engine {
	t.Helper()
	sc := scenario.A(50, false)
	cfg := fusion.Config{
		Localizer:     sim.LocalizerConfig(sc),
		Sensors:       sc.Sensors,
		ReorderWindow: 2,
	}
	cfg.Localizer.Seed = seed
	cfg.Localizer.NumParticles = 300
	e, err := fusion.NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// stream renders a sequenced Scenario-A measurement stream, shuffled
// deterministically by shuffleSeed (0 = in order).
func stream(t testing.TB, steps int, seed, shuffleSeed uint64) []fusion.Meas {
	t.Helper()
	sc := scenario.A(50, false)
	src := rng.NewNamed(seed, "zone-test/measure")
	var out []fusion.Meas
	for step := 0; step < steps; step++ {
		for _, sen := range sc.Sensors {
			m := sen.Measure(src, sc.Sources, nil, step)
			out = append(out, fusion.Meas{SensorID: sen.ID, CPM: m.CPM, Step: step, Seq: uint64(step + 1)})
		}
	}
	if shuffleSeed != 0 {
		sh := rng.NewNamed(shuffleSeed, "zone-test/shuffle")
		sh.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	}
	return out
}

func seedFor(name string) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(name); i++ {
		h = (h ^ uint64(name[i])) * 1099511628211
	}
	return h | 1
}

func testManager(t testing.TB, opts Options) *Manager {
	t.Helper()
	if opts.Factory == nil {
		opts.Factory = func(name string) (Resources, error) {
			return Resources{Engine: testEngine(t, seedFor(name))}, nil
		}
	}
	m, err := NewManager(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = m.Close() })
	return m
}

func TestValidateName(t *testing.T) {
	good := []string{"default", "a", "zone-7", "a_b-c", "0east"}
	for _, n := range good {
		if err := ValidateName(n); err != nil {
			t.Errorf("ValidateName(%q) = %v, want nil", n, err)
		}
	}
	bad := []string{"", "UPPER", "has.dot", "a/b", "-lead", "_lead", "white space",
		"x123456789012345678901234567890123456789012345678901234567890123456789"}
	for _, n := range bad {
		if err := ValidateName(n); !errors.Is(err, ErrBadName) {
			t.Errorf("ValidateName(%q) = %v, want ErrBadName", n, err)
		}
	}
}

func TestGetLazyLookupAndLimit(t *testing.T) {
	var builds atomic.Int64
	m := testManager(t, Options{
		MaxZones: 2,
		Factory: func(name string) (Resources, error) {
			builds.Add(1)
			return Resources{Engine: testEngine(t, seedFor(name))}, nil
		},
	})
	if _, ok := m.Lookup("east"); ok {
		t.Fatal("Lookup conjured a zone into being")
	}
	z, err := m.Get("east")
	if err != nil {
		t.Fatal(err)
	}
	if z2, err := m.Get("east"); err != nil || z2 != z {
		t.Fatalf("second Get = (%v, %v), want the same zone", z2, err)
	}
	if got := builds.Load(); got != 1 {
		t.Fatalf("factory ran %d times for one zone", got)
	}
	if _, err := m.Get("west"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Get("north"); !errors.Is(err, ErrZoneLimit) {
		t.Fatalf("Get over cap = %v, want ErrZoneLimit", err)
	}
	if _, err := m.Get("Bad Name"); !errors.Is(err, ErrBadName) {
		t.Fatalf("Get bad name = %v, want ErrBadName", err)
	}
	if names := m.Names(); len(names) != 2 || names[0] != "east" || names[1] != "west" {
		t.Fatalf("Names = %v", names)
	}
}

func TestSubmitOutcomeCounts(t *testing.T) {
	m := testManager(t, Options{})
	ms := stream(t, 3, 1, 0)
	batch := append([]fusion.Meas(nil), ms[:10]...)
	batch = append(batch, ms[3])                                       // duplicate
	batch = append(batch, fusion.Meas{SensorID: 9999, CPM: 5, Seq: 1}) // spoofed
	res, err := m.Submit(context.Background(), "east", batch)
	if err != nil {
		t.Fatal(err)
	}
	want := fusion.BatchResult{Accepted: 10, Duplicate: 1, Rejected: 1}
	if res != want {
		t.Fatalf("Submit result = %+v, want %+v", res, want)
	}
}

func TestMailboxBackpressure(t *testing.T) {
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	m := testManager(t, Options{
		Mailbox: 1,
		Factory: func(name string) (Resources, error) {
			return Resources{
				Engine: testEngine(t, 7),
				AfterBatch: func() {
					select {
					case entered <- struct{}{}:
					default:
					}
					<-release
				},
			}, nil
		},
	})
	z, err := m.Get("slow")
	if err != nil {
		t.Fatal(err)
	}
	ms := stream(t, 1, 1, 0)
	go func() { _, _ = z.Submit(context.Background(), ms[:1]) }()
	<-entered // the event loop is wedged inside AfterBatch

	// Admit batches with an already-cancelled context: each either
	// occupies mailbox space (returning ctx.Err immediately) or finds
	// the mailbox full. No sleeps needed.
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	var sawFull bool
	for i := 0; i < 5; i++ {
		_, err := z.Submit(cancelled, ms[1:2])
		if errors.Is(err, ErrMailboxFull) {
			sawFull = true
			break
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Submit = %v, want context.Canceled or ErrMailboxFull", err)
		}
	}
	if !sawFull {
		t.Fatal("mailbox never reported full")
	}
	close(release)
}

func TestSweepIdleEvictsWithFinalClose(t *testing.T) {
	var builds, closes atomic.Int64
	m := testManager(t, Options{
		IdleAfter: time.Millisecond,
		Factory: func(name string) (Resources, error) {
			builds.Add(1)
			return Resources{
				Engine: testEngine(t, seedFor(name)),
				Close:  func() error { closes.Add(1); return nil },
			}, nil
		},
	})
	ctx := context.Background()
	ms := stream(t, 1, 1, 0)
	for _, name := range []string{DefaultZone, "east"} {
		if _, err := m.Submit(ctx, name, ms); err != nil {
			t.Fatal(err)
		}
	}
	future := time.Now().Add(time.Hour)
	if got := m.SweepIdle(future); len(got) != 1 || got[0] != "east" {
		t.Fatalf("SweepIdle = %v, want [east] (default zone is never evicted)", got)
	}
	if closes.Load() != 1 {
		t.Fatalf("Close hooks run = %d, want 1", closes.Load())
	}
	if _, ok := m.Lookup("east"); ok {
		t.Fatal("evicted zone still live")
	}
	if _, ok := m.Lookup(DefaultZone); !ok {
		t.Fatal("default zone was evicted")
	}
	// A late measurement recreates the zone cleanly.
	if _, err := m.Submit(ctx, "east", ms); err != nil {
		t.Fatalf("submit after eviction: %v", err)
	}
	if builds.Load() != 3 {
		t.Fatalf("factory ran %d times, want 3 (default, east, recreated east)", builds.Load())
	}
}

func TestEvictionRacingLateMeasurement(t *testing.T) {
	var closes atomic.Int64
	m := testManager(t, Options{
		IdleAfter: time.Nanosecond,
		Factory: func(name string) (Resources, error) {
			return Resources{
				Engine: testEngine(t, seedFor(name)),
				Close:  func() error { closes.Add(1); return nil },
			}, nil
		},
	})
	ctx := context.Background()
	ms := stream(t, 2, 3, 0)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			name := fmt.Sprintf("race-%d", w%2)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := m.Submit(ctx, name, ms[i%len(ms):i%len(ms)+1]); err != nil {
					t.Errorf("Submit during eviction churn: %v", err)
					return
				}
			}
		}(w)
	}
	deadline := time.Now().Add(200 * time.Millisecond)
	for time.Now().Before(deadline) {
		m.SweepIdle(time.Now().Add(time.Hour))
	}
	close(stop)
	wg.Wait()
	if closes.Load() == 0 {
		t.Fatal("eviction never fired during the churn")
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestManagerCloseRefusesWork(t *testing.T) {
	m := testManager(t, Options{})
	if _, err := m.Get("east"); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatalf("second Close = %v, want nil", err)
	}
	if _, err := m.Get("east"); !errors.Is(err, ErrManagerClosed) {
		t.Fatalf("Get after Close = %v, want ErrManagerClosed", err)
	}
	if _, err := m.Submit(context.Background(), "east", nil); !errors.Is(err, ErrManagerClosed) {
		t.Fatalf("Submit after Close = %v, want ErrManagerClosed", err)
	}
}

// TestZonesMatchIndependentEngines is the shard-equivalence
// invariant: N zones fed N per-zone streams through the manager
// (concurrently, with interleaved snapshot readers) end in exactly
// the state of N independent engines fed the same streams directly —
// byte-identical exported state, RNG cursors included.
func TestZonesMatchIndependentEngines(t *testing.T) {
	const zones = 16
	m := testManager(t, Options{MaxZones: zones})
	ctx := context.Background()

	var wg sync.WaitGroup
	for i := 0; i < zones; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := fmt.Sprintf("z%02d", i)
			ms := stream(t, 4, uint64(i+1), uint64(1000+i))
			for off := 0; off < len(ms); off += 7 {
				end := off + 7
				if end > len(ms) {
					end = len(ms)
				}
				if _, err := m.Submit(ctx, name, ms[off:end]); err != nil {
					t.Errorf("zone %s: %v", name, err)
					return
				}
				if off%21 == 0 { // interleave reads with writes
					_ = mustZone(t, m, name).Engine().Snapshot()
				}
			}
		}(i)
	}
	wg.Wait()

	for i := 0; i < zones; i++ {
		name := fmt.Sprintf("z%02d", i)
		ref := testEngine(t, seedFor(name))
		ms := stream(t, 4, uint64(i+1), uint64(1000+i))
		if _, err := ref.Submit(ctx, ms); err != nil {
			t.Fatal(err)
		}
		got := exportJSON(t, mustZone(t, m, name).Engine())
		want := exportJSON(t, ref)
		if got != want {
			t.Errorf("zone %s diverged from an independent engine fed the same stream", name)
		}
	}
}

func mustZone(t *testing.T, m *Manager, name string) *Zone {
	t.Helper()
	z, ok := m.Lookup(name)
	if !ok {
		t.Fatalf("zone %s not live", name)
	}
	return z
}

func exportJSON(t *testing.T, e *fusion.Engine) string {
	t.Helper()
	st, err := e.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestManagerMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	m := testManager(t, Options{Metrics: reg, IdleAfter: time.Millisecond})
	if _, err := m.Submit(context.Background(), "east", stream(t, 1, 1, 0)); err != nil {
		t.Fatal(err)
	}
	m.SweepIdle(time.Now().Add(time.Hour))
	var buf strings.Builder
	if err := reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"radloc_zone_created_total 1",
		"radloc_zone_evicted_total 1",
		"radloc_zone_active 0",
	} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("metrics missing %q:\n%s", want, buf.String())
		}
	}
}
