package zone

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"radloc/internal/fusion"
	"radloc/internal/obs"
)

// ErrZoneLimit is returned by Get/Submit when creating one more zone
// would exceed Options.MaxZones — the process-level bound on live
// engines. The HTTP boundary maps this to 503.
var ErrZoneLimit = errors.New("zone: zone limit reached")

// ErrBadName is returned for zone names outside the wire grammar:
// 1–64 characters of [a-z0-9_-], starting with a letter or digit.
var ErrBadName = errors.New("zone: bad zone name")

// ErrManagerClosed is returned once Close has run; no zone accepts
// further work.
var ErrManagerClosed = errors.New("zone: manager closed")

// ValidateName checks a zone name against the wire grammar
// (^[a-z0-9][a-z0-9_-]{0,63}$). Names double as WAL subdirectory and
// metric label values, so the grammar is deliberately narrow: no path
// separators, no dots, no upper case.
func ValidateName(name string) error {
	if len(name) == 0 || len(name) > 64 {
		return fmt.Errorf("%w: %q (want 1-64 chars of [a-z0-9_-])", ErrBadName, name)
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case 'a' <= c && c <= 'z', '0' <= c && c <= '9':
		case (c == '_' || c == '-') && i > 0:
		default:
			return fmt.Errorf("%w: %q (want 1-64 chars of [a-z0-9_-], leading alphanumeric)", ErrBadName, name)
		}
	}
	return nil
}

// Factory builds one zone's resources on first use (and again if the
// zone is recreated after eviction). It runs outside the manager's
// zone-table lock, so a slow build (WAL recovery) stalls only
// requests for that zone.
type Factory func(name string) (Resources, error)

// Options configures a Manager.
type Options struct {
	// Factory builds a zone's resources on demand. Required.
	Factory Factory
	// MaxZones caps the number of live zones (default 64). Get fails
	// with ErrZoneLimit rather than create one more.
	MaxZones int
	// Mailbox is each zone's mailbox capacity in batches (default 64).
	// A full mailbox fails Submit with ErrMailboxFull.
	Mailbox int
	// IdleAfter evicts a zone that has not accepted a batch for this
	// long (checkpointing it first); 0 disables eviction. The default
	// zone is never evicted — see SweepIdle.
	IdleAfter time.Duration
	// Metrics, when non-nil, receives the manager's counters
	// (radloc_zone_active, _created_total, _evicted_total,
	// _mailbox_full_total).
	Metrics *obs.Registry
}

// Manager is the zone registry: it creates zones lazily through the
// factory, bounds how many live at once, routes batches, and evicts
// idle zones. All methods are safe for concurrent use.
type Manager struct {
	opts Options

	mu     sync.Mutex
	zones  map[string]*Zone
	closed bool
	// pending marks names with a create or close in flight: Get waits
	// for the channel, then re-examines the table. Covering both
	// transitions with one map is what makes the eviction-vs-late-
	// measurement race safe — a submitter that lost its zone waits out
	// the close, then recreates.
	pending map[string]chan struct{}

	created, evicted, mailFull *obs.Counter
}

// NewManager builds the registry. No zones exist until Get asks for
// them.
func NewManager(opts Options) (*Manager, error) {
	if opts.Factory == nil {
		return nil, errors.New("zone: Options.Factory is required")
	}
	if opts.MaxZones <= 0 {
		opts.MaxZones = 64
	}
	if opts.Mailbox <= 0 {
		opts.Mailbox = 64
	}
	m := &Manager{
		opts:    opts,
		zones:   make(map[string]*Zone),
		pending: make(map[string]chan struct{}),
	}
	reg := opts.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	m.created = reg.Counter("radloc_zone_created_total", "Zones created (including recreations after eviction).")
	m.evicted = reg.Counter("radloc_zone_evicted_total", "Zones evicted after their idle TTL, final checkpoint written.")
	m.mailFull = reg.Counter("radloc_zone_mailbox_full_total", "Batches refused because a zone mailbox was at capacity.")
	reg.GaugeFunc("radloc_zone_active", "Live zones.", func() float64 {
		m.mu.Lock()
		defer m.mu.Unlock()
		return float64(len(m.zones))
	})
	return m, nil
}

// Get returns the named zone, creating it through the factory on
// first use. If the name is mid-close (eviction or shutdown racing
// this call), Get waits for the close to finish and recreates.
func (m *Manager) Get(name string) (*Zone, error) {
	if err := ValidateName(name); err != nil {
		return nil, err
	}
	for {
		m.mu.Lock()
		if m.closed {
			m.mu.Unlock()
			return nil, ErrManagerClosed
		}
		if z, ok := m.zones[name]; ok {
			m.mu.Unlock()
			return z, nil
		}
		if ch, ok := m.pending[name]; ok {
			m.mu.Unlock()
			<-ch
			continue
		}
		// Count in-flight creations against the cap too, or a burst of
		// novel names could overshoot it while factories run.
		if len(m.zones)+len(m.pending) >= m.opts.MaxZones {
			m.mu.Unlock()
			return nil, fmt.Errorf("%w: %d zones live", ErrZoneLimit, m.opts.MaxZones)
		}
		ch := make(chan struct{})
		m.pending[name] = ch
		m.mu.Unlock()

		res, err := m.opts.Factory(name)

		m.mu.Lock()
		delete(m.pending, name)
		var z *Zone
		if err == nil {
			z = newZone(name, res, m.opts.Mailbox)
			m.zones[name] = z
			m.created.Inc()
		}
		m.mu.Unlock()
		close(ch)
		if err != nil {
			return nil, fmt.Errorf("zone: create %q: %w", name, err)
		}
		return z, nil
	}
}

// Lookup returns the named zone if it is currently live — the
// read-path accessor: GET routes must not conjure zones into being.
func (m *Manager) Lookup(name string) (*Zone, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	z, ok := m.zones[name]
	return z, ok
}

// Names returns the live zone names, sorted.
func (m *Manager) Names() []string {
	m.mu.Lock()
	out := make([]string, 0, len(m.zones))
	for name := range m.zones {
		out = append(out, name)
	}
	m.mu.Unlock()
	sort.Strings(out)
	return out
}

// Submit routes one batch to the named zone, creating it if needed.
// If the zone closes between lookup and delivery (an eviction racing
// a late measurement), the batch is resubmitted against a recreated
// zone — the caller never sees ErrZoneClosed unless the race repeats
// implausibly. ErrMailboxFull is returned as-is: backpressure is the
// caller's signal, not the manager's to absorb.
func (m *Manager) Submit(ctx context.Context, name string, ms []fusion.Meas) (fusion.BatchResult, error) {
	for attempt := 0; ; attempt++ {
		z, err := m.Get(name)
		if err != nil {
			return fusion.BatchResult{}, err
		}
		res, err := z.Submit(ctx, ms)
		if errors.Is(err, ErrZoneClosed) && attempt < 3 {
			continue
		}
		if errors.Is(err, ErrMailboxFull) {
			m.mailFull.Inc()
		}
		return res, err
	}
}

// Drop closes and removes one named zone regardless of idle time —
// mailbox drained, gate tail flushed, owner's Close hook run — used
// when a zone's ownership migrates to another node. The default zone
// is refused (legacy clients depend on it); a name that is not live
// is a no-op. The zone can be recreated by a later Get.
func (m *Manager) Drop(name string) error {
	if name == DefaultZone {
		return fmt.Errorf("zone: cannot drop %q", DefaultZone)
	}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return ErrManagerClosed
	}
	z, ok := m.zones[name]
	if !ok {
		m.mu.Unlock()
		return nil
	}
	delete(m.zones, name)
	m.pending[name] = make(chan struct{})
	m.mu.Unlock()

	err := z.close()
	m.mu.Lock()
	ch := m.pending[name]
	delete(m.pending, name)
	m.mu.Unlock()
	close(ch)
	m.evicted.Inc()
	return err
}

// SweepIdle evicts every zone (except the default zone, whose
// reorder-gate state legacy clients depend on) that has been idle for
// Options.IdleAfter or longer, as measured at now: each victim is
// closed — mailbox drained, gate tail flushed, final checkpoint via
// the owner's Close hook — then released. Returns the evicted names,
// sorted. A no-op when IdleAfter is 0.
func (m *Manager) SweepIdle(now time.Time) []string {
	if m.opts.IdleAfter <= 0 {
		return nil
	}
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	var victims []*Zone
	for name, z := range m.zones {
		if name == DefaultZone || z.IdleFor(now) < m.opts.IdleAfter {
			continue
		}
		delete(m.zones, name)
		m.pending[name] = make(chan struct{})
		victims = append(victims, z)
	}
	m.mu.Unlock()

	names := make([]string, 0, len(victims))
	for _, z := range victims {
		_ = z.close()
		m.mu.Lock()
		ch := m.pending[z.name]
		delete(m.pending, z.name)
		m.mu.Unlock()
		close(ch)
		m.evicted.Inc()
		names = append(names, z.name)
	}
	sort.Strings(names)
	return names
}

// Janitor runs SweepIdle every interval until ctx is cancelled —
// spawn it as a goroutine. A no-op loop when eviction is disabled.
func (m *Manager) Janitor(ctx context.Context, interval time.Duration) {
	if m.opts.IdleAfter <= 0 || interval <= 0 {
		return
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case now := <-t.C:
			m.SweepIdle(now)
		}
	}
}

// Close shuts every zone down — mailboxes drained, gate tails
// flushed, final checkpoints written — and refuses further work. The
// first hook error is returned; all zones are closed regardless.
func (m *Manager) Close() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	zs := make([]*Zone, 0, len(m.zones))
	for _, z := range m.zones {
		zs = append(zs, z)
	}
	m.zones = make(map[string]*Zone)
	m.mu.Unlock()
	sort.Slice(zs, func(a, b int) bool { return zs[a].name < zs[b].name })
	var first error
	for _, z := range zs {
		if err := z.close(); err != nil && first == nil {
			first = fmt.Errorf("zone: close %q: %w", z.name, err)
		}
	}
	return first
}
