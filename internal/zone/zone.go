// Package zone shards the fusion center into named, independently
// recoverable zones. Each zone owns one fusion.Engine and applies
// measurement batches from a single goroutine — the single-writer
// event loop — fed by a bounded mailbox, so zones never contend on
// one global engine lock and a burst in one zone backpressures only
// that zone. A Manager keeps the registry of live zones: lazy
// creation from a factory, a hard cap on the live count, and idle
// eviction that checkpoints a zone before releasing it, with the
// eviction-vs-late-measurement race resolved by recreation rather
// than loss.
package zone

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"radloc/internal/fusion"
)

// DefaultZone is the zone legacy single-zone clients land in: the
// unnamed routes (/measurements, /snapshot, ...) and unzoned pipe
// records alias it, so a pre-zone deployment keeps its exact behavior.
const DefaultZone = "default"

// ErrZoneClosed is returned by Submit when the zone's event loop has
// stopped accepting work (eviction or shutdown). The batch was NOT
// applied; Manager.Submit retries it against a recreated zone.
var ErrZoneClosed = errors.New("zone: closed")

// ErrMailboxFull is returned by Submit when the zone's bounded
// mailbox is at capacity — per-zone backpressure. The batch was NOT
// applied; the HTTP boundary maps this to 429 + Retry-After.
var ErrMailboxFull = errors.New("zone: mailbox full")

// Resources is everything a factory hands the manager for one zone.
type Resources struct {
	// Engine is the zone's fusion engine. Required.
	Engine *fusion.Engine
	// AfterBatch, when non-nil, runs on the zone's event loop after
	// each applied batch — the owner's checkpoint-cadence hook.
	AfterBatch func()
	// Close, when non-nil, runs exactly once on the event loop as the
	// zone shuts down, after the reorder gate's tail has been flushed —
	// the owner's final-checkpoint + release hook.
	Close func() error
	// Aux is an opaque owner handle carried alongside the engine (the
	// daemon keeps its durability state here so /zones/{z}/statez can
	// reach it).
	Aux any
}

// envelope is one mailbox entry: a batch and its reply slot.
type envelope struct {
	ctx   context.Context
	ms    []fusion.Meas
	reply chan outcome
}

// outcome is what the event loop posts back for one envelope.
type outcome struct {
	res fusion.BatchResult
	err error
}

// Zone is one shard: a fusion engine plus the single goroutine that
// applies batches to it in mailbox order. Submit is safe for
// concurrent use; reads go straight to the engine (itself
// concurrency-safe) via Engine.
type Zone struct {
	name string
	res  Resources
	mail chan envelope

	// sendMu makes "check closed, then send" atomic against close():
	// senders hold it shared, close() exclusively, so the mailbox is
	// never closed with a send in flight.
	sendMu sync.RWMutex
	closed bool

	done     chan struct{} // event loop exited; closeErr is set
	closeErr error

	lastUsed atomic.Int64 // unix nanos of the newest Submit
}

func newZone(name string, res Resources, mailbox int) *Zone {
	if mailbox < 1 {
		mailbox = 1
	}
	z := &Zone{
		name: name,
		res:  res,
		mail: make(chan envelope, mailbox),
		done: make(chan struct{}),
	}
	z.lastUsed.Store(time.Now().UnixNano())
	go z.loop()
	return z
}

// Name returns the zone's registry name.
func (z *Zone) Name() string { return z.name }

// Engine returns the zone's fusion engine for read paths (Snapshot,
// Sensors) and recovery-time maintenance. Writes during normal
// operation must go through Submit so the single-writer order holds.
func (z *Zone) Engine() *fusion.Engine { return z.res.Engine }

// Aux returns the owner handle the factory attached to this zone.
func (z *Zone) Aux() any { return z.res.Aux }

// IdleFor reports how long ago the zone last accepted a batch.
func (z *Zone) IdleFor(now time.Time) time.Duration {
	return now.Sub(time.Unix(0, z.lastUsed.Load()))
}

// loop is the zone's single writer: it applies mailbox batches in
// arrival order until the mailbox closes, then flushes the reorder
// gate's tail and runs the owner's Close hook.
func (z *Zone) loop() {
	defer close(z.done)
	for env := range z.mail {
		res, err := z.res.Engine.Submit(env.ctx, env.ms)
		if z.res.AfterBatch != nil {
			z.res.AfterBatch()
		}
		env.reply <- outcome{res: res, err: err}
	}
	// Shutdown: no further watermark advance will come, so release
	// every held round before the owner takes its final checkpoint.
	_, _ = z.res.Engine.FlushPending()
	if z.res.Close != nil {
		z.closeErr = z.res.Close()
	}
}

// Submit offers one batch to the zone's mailbox and waits for the
// event loop to apply it, returning the per-reading outcome counts.
// A full mailbox fails fast with ErrMailboxFull (backpressure), a
// closed zone with ErrZoneClosed (eviction race; retry via the
// manager). A ctx cancellation while waiting abandons the wait — the
// loop still applies the batch, since it was already admitted.
func (z *Zone) Submit(ctx context.Context, ms []fusion.Meas) (fusion.BatchResult, error) {
	env := envelope{ctx: ctx, ms: ms, reply: make(chan outcome, 1)}
	z.sendMu.RLock()
	if z.closed {
		z.sendMu.RUnlock()
		return fusion.BatchResult{}, ErrZoneClosed
	}
	select {
	case z.mail <- env:
		z.sendMu.RUnlock()
	default:
		z.sendMu.RUnlock()
		return fusion.BatchResult{}, ErrMailboxFull
	}
	z.lastUsed.Store(time.Now().UnixNano())
	select {
	case out := <-env.reply:
		return out.res, out.err
	case <-ctx.Done():
		return fusion.BatchResult{}, ctx.Err()
	}
}

// close stops the zone: new Submits fail with ErrZoneClosed, already
// admitted batches drain through the loop, the gate's tail is
// flushed, and the owner's Close hook (final checkpoint) runs. It
// blocks until the loop has exited and returns the hook's error.
// Idempotent.
func (z *Zone) close() error {
	z.sendMu.Lock()
	if !z.closed {
		z.closed = true
		close(z.mail)
	}
	z.sendMu.Unlock()
	<-z.done
	return z.closeErr
}
