package zone

import (
	"errors"
	"testing"
)

func TestManagerDrop(t *testing.T) {
	m := testManager(t, Options{})
	if err := m.Drop(DefaultZone); err == nil {
		t.Fatal("Drop accepted the default zone")
	}

	if _, err := m.Get("east"); err != nil {
		t.Fatal(err)
	}
	if err := m.Drop("east"); err != nil {
		t.Fatal(err)
	}
	if _, ok := m.Lookup("east"); ok {
		t.Fatal("dropped zone still resolvable")
	}
	for _, name := range m.Names() {
		if name == "east" {
			t.Fatal("dropped zone still listed")
		}
	}

	// Dropping a zone that is not live is a no-op, and a later Get
	// recreates it from scratch.
	if err := m.Drop("east"); err != nil {
		t.Fatalf("re-drop: %v", err)
	}
	if _, err := m.Get("east"); err != nil {
		t.Fatalf("recreate after drop: %v", err)
	}

	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if err := m.Drop("east"); !errors.Is(err, ErrManagerClosed) {
		t.Fatalf("Drop after Close = %v, want ErrManagerClosed", err)
	}
}
