package vfs

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"

	"radloc/internal/obs"
)

func TestOSRoundTrip(t *testing.T) {
	dir := t.TempDir()
	fsys := Or(nil)
	path := filepath.Join(dir, "x.txt")
	f, err := fsys.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	b, err := fsys.ReadFile(path)
	if err != nil || string(b) != "hello" {
		t.Fatalf("ReadFile = %q, %v", b, err)
	}
	ents, err := fsys.ReadDir(dir)
	if err != nil || len(ents) != 1 {
		t.Fatalf("ReadDir = %v, %v", ents, err)
	}
	if err := fsys.Truncate(path, 2); err != nil {
		t.Fatal(err)
	}
	fi, err := fsys.Stat(path)
	if err != nil || fi.Size() != 2 {
		t.Fatalf("Stat after truncate: %v, %v", fi, err)
	}
}

func TestFaultyWriteWindow(t *testing.T) {
	dir := t.TempDir()
	fa := NewFaulty(nil, FaultConfig{Seed: 1})
	path := filepath.Join(dir, "w.txt")
	f, err := fa.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Write([]byte("ok\n")); err != nil {
		t.Fatalf("pre-window write: %v", err)
	}
	fa.FailWrites(nil, false)
	if _, err := f.Write([]byte("fail\n")); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("window write err = %v, want ENOSPC", err)
	}
	fa.Heal()
	if _, err := f.Write([]byte("ok2\n")); err != nil {
		t.Fatalf("post-heal write: %v", err)
	}
	b, _ := os.ReadFile(path)
	if string(b) != "ok\nok2\n" {
		t.Fatalf("file = %q", b)
	}
	if st := fa.Stats(); st.Writes != 1 || st.Torn != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestFaultyTornWriteLeavesPrefix(t *testing.T) {
	dir := t.TempDir()
	fa := NewFaulty(nil, FaultConfig{Seed: 7})
	path := filepath.Join(dir, "torn.txt")
	f, err := fa.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	fa.FailWrites(syscall.ENOSPC, true)
	payload := []byte("0123456789abcdef\n")
	n, err := f.Write(payload)
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("err = %v, want ENOSPC", err)
	}
	if n <= 0 || n >= len(payload) {
		t.Fatalf("torn write landed %d of %d bytes; want strict prefix", n, len(payload))
	}
	b, _ := os.ReadFile(path)
	if len(b) != n || !strings.HasPrefix(string(payload), string(b)) {
		t.Fatalf("on-disk %q is not the reported %d-byte prefix", b, n)
	}
	if st := fa.Stats(); st.Torn != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestFaultySyncAndReadWindows(t *testing.T) {
	dir := t.TempDir()
	fa := NewFaulty(nil, FaultConfig{Seed: 3})
	path := filepath.Join(dir, "s.txt")
	if err := os.WriteFile(path, []byte("data"), 0o644); err != nil {
		t.Fatal(err)
	}
	f, err := fa.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	fa.FailSyncs(nil)
	if err := f.Sync(); !errors.Is(err, syscall.EIO) {
		t.Fatalf("sync err = %v, want EIO", err)
	}
	fa.FailReads(nil)
	if _, err := fa.ReadFile(path); !errors.Is(err, syscall.EIO) {
		t.Fatalf("read err = %v, want EIO", err)
	}
	fa.Heal()
	if err := f.Sync(); err != nil {
		t.Fatalf("post-heal sync: %v", err)
	}
	if _, err := fa.ReadFile(path); err != nil {
		t.Fatalf("post-heal read: %v", err)
	}
}

func TestFaultyDeterministicSequence(t *testing.T) {
	run := func() FaultStats {
		dir := t.TempDir()
		fa := NewFaulty(nil, FaultConfig{Seed: 42, WriteErrProb: 0.3, TornWriteProb: 0.5})
		f, err := fa.OpenFile(filepath.Join(dir, "d.txt"), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		for i := 0; i < 200; i++ {
			_, _ = f.Write([]byte("a line of payload\n"))
		}
		return fa.Stats()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
	if a.Writes == 0 || a.Torn == 0 {
		t.Fatalf("probabilistic faults never fired: %+v", a)
	}
}

func TestObservedCountsFaults(t *testing.T) {
	reg := obs.NewRegistry()
	fa := NewFaulty(nil, FaultConfig{Seed: 1})
	fsys := Observe(fa, reg)
	dir := t.TempDir()
	f, err := fsys.OpenFile(filepath.Join(dir, "m.txt"), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	fa.FailWrites(nil, false)
	_, _ = f.Write([]byte("x"))
	_, _ = f.Write([]byte("y"))
	fa.Heal()
	fa.FailSyncs(nil)
	_ = f.Sync()
	fa.Heal()

	var buf strings.Builder
	if err := reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		`radloc_storage_faults_total{op="write",err="enospc"} 2`,
		`radloc_storage_faults_total{op="sync",err="eio"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}
}
