// Package vfs is the injectable filesystem seam under radloc's storage
// layer. internal/wal (segments, checkpoints, quarantine) and the
// daemon's cluster stores perform every filesystem operation through
// the small FS interface here instead of calling os.* directly, so a
// test — or a chaos run — can slide a fault injector underneath the
// entire durability stack without touching a single kernel knob.
//
// Three implementations ship:
//
//   - OS: the passthrough to the real filesystem (the default
//     everywhere an Options.FS field is left nil).
//   - Faulty: a seeded deterministic fault injector — ENOSPC on write,
//     EIO on read/write/sync, torn short-writes, slow fsync — the
//     storage twin of internal/netchaos.
//   - Observed: a counting wrapper that records every injected-or-real
//     fault on radloc_storage_faults_total{op,err}.
//
// The interface is deliberately the subset the WAL actually uses; it
// is not a general filesystem abstraction.
package vfs

import (
	"io"
	"io/fs"
	"os"
)

// File is an open file handle. The subset of *os.File the storage
// layer uses: sequential read/write, fsync, truncate-in-place.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	// Sync flushes the file's data to stable storage (fsync).
	Sync() error
	// Truncate changes the size of the open file.
	Truncate(size int64) error
	// Name returns the path the file was opened with.
	Name() string
}

// FS is the filesystem seam. Semantics match the identically-named
// os package functions; implementations may inject faults but must
// keep those semantics when they do not.
type FS interface {
	// OpenFile opens path with os.O_* flags.
	OpenFile(path string, flag int, perm fs.FileMode) (File, error)
	// Open opens path read-only.
	Open(path string) (File, error)
	// ReadFile reads the whole file at path.
	ReadFile(path string) ([]byte, error)
	// ReadDir lists the directory at path, sorted by name.
	ReadDir(path string) ([]fs.DirEntry, error)
	// MkdirAll creates the directory at path with any missing parents.
	MkdirAll(path string, perm fs.FileMode) error
	// Rename atomically moves oldPath to newPath.
	Rename(oldPath, newPath string) error
	// Remove deletes the file or empty directory at path.
	Remove(path string) error
	// Truncate resizes the file at path without opening it for append.
	Truncate(path string, size int64) error
	// Stat describes the file at path, following symlinks.
	Stat(path string) (fs.FileInfo, error)
	// Lstat describes the file at path without following symlinks.
	Lstat(path string) (fs.FileInfo, error)
	// CreateTemp creates a new temporary file in dir (see os.CreateTemp).
	CreateTemp(dir, pattern string) (File, error)
}

// OS is the passthrough FS over the real filesystem. The zero value is
// ready to use; every nil Options.FS in the storage stack resolves to
// it.
type OS struct{}

// OpenFile opens path with os.OpenFile.
func (OS) OpenFile(path string, flag int, perm fs.FileMode) (File, error) {
	return os.OpenFile(path, flag, perm)
}

// Open opens path read-only with os.Open.
func (OS) Open(path string) (File, error) { return os.Open(path) }

// ReadFile reads the whole file with os.ReadFile.
func (OS) ReadFile(path string) ([]byte, error) { return os.ReadFile(path) }

// ReadDir lists the directory with os.ReadDir.
func (OS) ReadDir(path string) ([]fs.DirEntry, error) { return os.ReadDir(path) }

// MkdirAll creates the directory tree with os.MkdirAll.
func (OS) MkdirAll(path string, perm fs.FileMode) error { return os.MkdirAll(path, perm) }

// Rename moves oldPath to newPath with os.Rename.
func (OS) Rename(oldPath, newPath string) error { return os.Rename(oldPath, newPath) }

// Remove deletes path with os.Remove.
func (OS) Remove(path string) error { return os.Remove(path) }

// Truncate resizes path with os.Truncate.
func (OS) Truncate(path string, size int64) error { return os.Truncate(path, size) }

// Stat describes path with os.Stat.
func (OS) Stat(path string) (fs.FileInfo, error) { return os.Stat(path) }

// Lstat describes path with os.Lstat.
func (OS) Lstat(path string) (fs.FileInfo, error) { return os.Lstat(path) }

// CreateTemp creates a temporary file with os.CreateTemp.
func (OS) CreateTemp(dir, pattern string) (File, error) { return os.CreateTemp(dir, pattern) }

// Or returns f, or OS when f is nil — the one-line default used by
// every Options struct that carries an FS field.
func Or(f FS) FS {
	if f == nil {
		return OS{}
	}
	return f
}

// WriteFile writes data to path through fsys, creating or truncating
// the file — the os.WriteFile convenience lifted onto the seam, so
// small metadata writers (epoch files, route caches) inject faults
// like the WAL does.
func WriteFile(fsys FS, path string, data []byte, perm fs.FileMode) error {
	f, err := Or(fsys).OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, perm)
	if err != nil {
		return err
	}
	_, werr := f.Write(data)
	cerr := f.Close()
	if werr != nil {
		return werr
	}
	return cerr
}
