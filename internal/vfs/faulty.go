package vfs

import (
	"io/fs"
	"sync"
	"syscall"
	"time"

	"radloc/internal/clock"
	"radloc/internal/rng"
)

// FaultConfig tunes a Faulty filesystem. All probabilities are in
// [0, 1] and are drawn from one seeded stream, so a given (seed,
// operation sequence) pair replays the identical fault pattern — the
// storage analogue of netchaos.Config.
type FaultConfig struct {
	// Seed feeds the deterministic fault stream.
	Seed uint64
	// WriteErrProb fails a file Write with WriteErr.
	WriteErrProb float64
	// SyncErrProb fails a file Sync with SyncErr.
	SyncErrProb float64
	// ReadErrProb fails a file Read (and ReadFile) with ReadErr.
	ReadErrProb float64
	// TornWriteProb turns a failing-or-not Write into a torn one: a
	// random strict prefix of the buffer lands on disk, then WriteErr
	// is returned. Torn writes are what fsync-less crashes and dying
	// media leave behind.
	TornWriteProb float64
	// WriteErr is the error injected on writes (default ENOSPC: the
	// disk-full case the degraded mode exists for).
	WriteErr error
	// SyncErr is the error injected on fsync (default EIO).
	SyncErr error
	// ReadErr is the error injected on reads (default EIO).
	ReadErr error
	// SlowSync, when positive, sleeps on Clock before every Sync —
	// the degraded-media case where fsync takes seconds.
	SlowSync time.Duration
	// Clock drives SlowSync; nil falls back to the real clock.
	Clock clock.Clock
}

// FaultStats counts the faults a Faulty filesystem actually injected.
type FaultStats struct {
	// Writes counts injected write failures (torn ones included).
	Writes uint64 `json:"writes"`
	// Syncs counts injected fsync failures.
	Syncs uint64 `json:"syncs"`
	// Reads counts injected read failures.
	Reads uint64 `json:"reads"`
	// Torn counts the write failures that left a partial prefix.
	Torn uint64 `json:"torn"`
}

// Faulty wraps an inner FS and injects deterministic storage faults.
// Beyond the seeded probabilities of FaultConfig it exposes direct
// window controls (FailWrites/FailSyncs/FailReads/Heal) so a chaos
// test can open an exact ENOSPC window and close it again. Faulty is
// safe for concurrent use.
type Faulty struct {
	inner FS

	mu    sync.Mutex
	cfg   FaultConfig
	strm  *rng.Stream
	stats FaultStats

	// window overrides: non-nil forces every matching op to fail.
	writeErr error
	syncErr  error
	readErr  error
	tornWin  bool // torn prefix on forced write failures
}

// NewFaulty wraps inner (nil = the real filesystem) with the given
// fault configuration.
func NewFaulty(inner FS, cfg FaultConfig) *Faulty {
	if cfg.WriteErr == nil {
		cfg.WriteErr = syscall.ENOSPC
	}
	if cfg.SyncErr == nil {
		cfg.SyncErr = syscall.EIO
	}
	if cfg.ReadErr == nil {
		cfg.ReadErr = syscall.EIO
	}
	return &Faulty{
		inner: Or(inner),
		cfg:   cfg,
		strm:  rng.NewNamed(cfg.Seed, "vfs/faulty"),
	}
}

// FailWrites opens a window in which every file write fails with err
// (nil = the configured WriteErr). When torn is true each failing
// write first lands a partial prefix, as a dying disk would.
func (f *Faulty) FailWrites(err error, torn bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err == nil {
		err = f.cfg.WriteErr
	}
	f.writeErr, f.tornWin = err, torn
}

// FailSyncs opens a window in which every fsync fails with err (nil =
// the configured SyncErr).
func (f *Faulty) FailSyncs(err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err == nil {
		err = f.cfg.SyncErr
	}
	f.syncErr = err
}

// FailReads opens a window in which every read fails with err (nil =
// the configured ReadErr).
func (f *Faulty) FailReads(err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err == nil {
		err = f.cfg.ReadErr
	}
	f.readErr = err
}

// Heal closes every forced-failure window. Probabilistic faults from
// FaultConfig keep firing.
func (f *Faulty) Heal() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.writeErr, f.syncErr, f.readErr, f.tornWin = nil, nil, nil, false
}

// Stats returns a snapshot of the injected-fault counters.
func (f *Faulty) Stats() FaultStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

// writeFault decides one write's fate: (fault error, torn prefix
// length for a buffer of n bytes; -1 = not torn).
func (f *Faulty) writeFault(n int) (error, int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.writeErr != nil {
		f.stats.Writes++
		if f.tornWin && n > 1 {
			f.stats.Torn++
			return f.writeErr, 1 + f.strm.IntN(n-1)
		}
		return f.writeErr, -1
	}
	if f.cfg.WriteErrProb > 0 && f.strm.Float64() < f.cfg.WriteErrProb {
		f.stats.Writes++
		if f.cfg.TornWriteProb > 0 && n > 1 && f.strm.Float64() < f.cfg.TornWriteProb {
			f.stats.Torn++
			return f.cfg.WriteErr, 1 + f.strm.IntN(n-1)
		}
		return f.cfg.WriteErr, -1
	}
	return nil, -1
}

func (f *Faulty) syncFault() error {
	f.mu.Lock()
	err := f.syncErr
	if err == nil && f.cfg.SyncErrProb > 0 && f.strm.Float64() < f.cfg.SyncErrProb {
		err = f.cfg.SyncErr
	}
	if err != nil {
		f.stats.Syncs++
	}
	slow, clk := f.cfg.SlowSync, f.cfg.Clock
	f.mu.Unlock()
	if slow > 0 {
		if clk == nil {
			clk = clock.Real{}
		}
		clk.Sleep(slow)
	}
	return err
}

func (f *Faulty) readFault() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.readErr != nil {
		f.stats.Reads++
		return f.readErr
	}
	if f.cfg.ReadErrProb > 0 && f.strm.Float64() < f.cfg.ReadErrProb {
		f.stats.Reads++
		return f.cfg.ReadErr
	}
	return nil
}

// OpenFile opens path through the inner FS; the returned handle
// injects faults on Read/Write/Sync.
func (f *Faulty) OpenFile(path string, flag int, perm fs.FileMode) (File, error) {
	inner, err := f.inner.OpenFile(path, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultyFile{File: inner, fs: f}, nil
}

// Open opens path read-only; reads through the handle inject faults.
func (f *Faulty) Open(path string) (File, error) {
	inner, err := f.inner.Open(path)
	if err != nil {
		return nil, err
	}
	return &faultyFile{File: inner, fs: f}, nil
}

// ReadFile reads the whole file, subject to read faults.
func (f *Faulty) ReadFile(path string) ([]byte, error) {
	if err := f.readFault(); err != nil {
		return nil, err
	}
	return f.inner.ReadFile(path)
}

// ReadDir lists the directory through the inner FS (never faulted:
// directory listing failures wedge recovery in uninteresting ways).
func (f *Faulty) ReadDir(path string) ([]fs.DirEntry, error) { return f.inner.ReadDir(path) }

// MkdirAll creates the directory tree, subject to write faults.
func (f *Faulty) MkdirAll(path string, perm fs.FileMode) error {
	if err, _ := f.writeFault(0); err != nil {
		return err
	}
	return f.inner.MkdirAll(path, perm)
}

// Rename moves oldPath to newPath, subject to write faults.
func (f *Faulty) Rename(oldPath, newPath string) error {
	if err, _ := f.writeFault(0); err != nil {
		return err
	}
	return f.inner.Rename(oldPath, newPath)
}

// Remove deletes path through the inner FS (never faulted: deletes
// are how the log frees space while degraded).
func (f *Faulty) Remove(path string) error { return f.inner.Remove(path) }

// Truncate resizes path through the inner FS (never faulted: truncate
// is the tail-repair primitive and shrinking needs no free space).
func (f *Faulty) Truncate(path string, size int64) error { return f.inner.Truncate(path, size) }

// Stat describes path through the inner FS.
func (f *Faulty) Stat(path string) (fs.FileInfo, error) { return f.inner.Stat(path) }

// Lstat describes path through the inner FS.
func (f *Faulty) Lstat(path string) (fs.FileInfo, error) { return f.inner.Lstat(path) }

// CreateTemp creates a temporary file, subject to write faults; the
// returned handle injects faults too.
func (f *Faulty) CreateTemp(dir, pattern string) (File, error) {
	if err, _ := f.writeFault(0); err != nil {
		return nil, err
	}
	inner, err := f.inner.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &faultyFile{File: inner, fs: f}, nil
}

// faultyFile injects faults on the per-handle operations.
type faultyFile struct {
	File
	fs *Faulty
}

func (ff *faultyFile) Read(p []byte) (int, error) {
	if err := ff.fs.readFault(); err != nil {
		return 0, err
	}
	return ff.File.Read(p)
}

func (ff *faultyFile) Write(p []byte) (int, error) {
	err, torn := ff.fs.writeFault(len(p))
	if err != nil {
		if torn > 0 && torn < len(p) {
			n, werr := ff.File.Write(p[:torn])
			if werr != nil {
				return n, werr
			}
			return n, err
		}
		return 0, err
	}
	return ff.File.Write(p)
}

func (ff *faultyFile) Sync() error {
	if err := ff.fs.syncFault(); err != nil {
		return err
	}
	return ff.File.Sync()
}
