package vfs

import (
	"errors"
	"io"
	"io/fs"
	"syscall"

	"radloc/internal/obs"
)

// Observed wraps an FS and counts every failed operation on
// radloc_storage_faults_total{op,err}, where op names the filesystem
// call (write, sync, read, open, rename, remove, mkdir, truncate)
// and err classifies the failure (enospc, eio, other). It counts
// real faults and injected ones alike — the metric reports what the
// storage layer experienced, not who caused it.
type Observed struct {
	inner  FS
	faults *obs.CounterFamily
}

// Observe wraps inner (nil = the real filesystem), recording fault
// counters on reg. A nil registry returns the inner FS unwrapped.
func Observe(inner FS, reg *obs.Registry) FS {
	inner = Or(inner)
	if reg == nil {
		return inner
	}
	return &Observed{
		inner: inner,
		faults: reg.CounterFamily("radloc_storage_faults_total",
			"Filesystem operations that failed, by operation and error class.",
			"op", "err"),
	}
}

// errClass buckets an error for the metric label.
func errClass(err error) string {
	switch {
	case errors.Is(err, syscall.ENOSPC):
		return "enospc"
	case errors.Is(err, syscall.EIO):
		return "eio"
	default:
		return "other"
	}
}

func (o *Observed) count(op string, err error) {
	if err != nil {
		o.faults.With(op, errClass(err)).Inc()
	}
}

// OpenFile opens path, counting failures under op="open".
func (o *Observed) OpenFile(path string, flag int, perm fs.FileMode) (File, error) {
	f, err := o.inner.OpenFile(path, flag, perm)
	o.count("open", err)
	if err != nil {
		return nil, err
	}
	return &observedFile{File: f, o: o}, nil
}

// Open opens path read-only, counting failures under op="open".
func (o *Observed) Open(path string) (File, error) {
	f, err := o.inner.Open(path)
	o.count("open", err)
	if err != nil {
		return nil, err
	}
	return &observedFile{File: f, o: o}, nil
}

// ReadFile reads the whole file, counting failures under op="read".
func (o *Observed) ReadFile(path string) ([]byte, error) {
	b, err := o.inner.ReadFile(path)
	o.count("read", err)
	return b, err
}

// ReadDir lists the directory, counting failures under op="read".
func (o *Observed) ReadDir(path string) ([]fs.DirEntry, error) {
	ents, err := o.inner.ReadDir(path)
	o.count("read", err)
	return ents, err
}

// MkdirAll creates the directory tree, counting failures under op="mkdir".
func (o *Observed) MkdirAll(path string, perm fs.FileMode) error {
	err := o.inner.MkdirAll(path, perm)
	o.count("mkdir", err)
	return err
}

// Rename moves oldPath to newPath, counting failures under op="rename".
func (o *Observed) Rename(oldPath, newPath string) error {
	err := o.inner.Rename(oldPath, newPath)
	o.count("rename", err)
	return err
}

// Remove deletes path, counting failures under op="remove"
// (not-exist is not a fault).
func (o *Observed) Remove(path string) error {
	err := o.inner.Remove(path)
	if err != nil && !errors.Is(err, fs.ErrNotExist) {
		o.count("remove", err)
	}
	return err
}

// Truncate resizes path, counting failures under op="truncate".
func (o *Observed) Truncate(path string, size int64) error {
	err := o.inner.Truncate(path, size)
	o.count("truncate", err)
	return err
}

// Stat describes path (stat failures are not counted: probing for
// absent files is normal control flow).
func (o *Observed) Stat(path string) (fs.FileInfo, error) { return o.inner.Stat(path) }

// Lstat describes path without following symlinks (uncounted, as Stat).
func (o *Observed) Lstat(path string) (fs.FileInfo, error) { return o.inner.Lstat(path) }

// CreateTemp creates a temporary file, counting failures under op="open".
func (o *Observed) CreateTemp(dir, pattern string) (File, error) {
	f, err := o.inner.CreateTemp(dir, pattern)
	o.count("open", err)
	if err != nil {
		return nil, err
	}
	return &observedFile{File: f, o: o}, nil
}

type observedFile struct {
	File
	o *Observed
}

func (of *observedFile) Read(p []byte) (int, error) {
	n, err := of.File.Read(p)
	if err != nil && !errors.Is(err, io.EOF) {
		of.o.count("read", err)
	}
	return n, err
}

func (of *observedFile) Write(p []byte) (int, error) {
	n, err := of.File.Write(p)
	of.o.count("write", err)
	return n, err
}

func (of *observedFile) Sync() error {
	err := of.File.Sync()
	of.o.count("sync", err)
	return err
}
