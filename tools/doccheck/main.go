// Command doccheck is the repository's documentation lint. It is
// stdlib-only (go/parser + go/ast) so CI can run it with `go run`
// without fetching external linters.
//
// Two checks, selected by flags:
//
//	go run ./tools/doccheck internal cmd
//
// walks the given roots and requires every package to carry a package
// comment (`// Package x ...` or `// Command x ...`).
//
//	go run ./tools/doccheck -exported internal/obs internal/wal
//
// additionally requires a doc comment on every exported top-level
// identifier in the given roots: types, functions, methods, exported
// constants and variables, exported struct fields and interface
// methods. A field or spec inside a documented group may rely on the
// group's comment or an inline trailing comment.
//
// Exit status is 1 with one "path: identifier" line per violation,
// 0 when clean. Test files are ignored.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

func main() {
	exported := flag.Bool("exported", false, "require doc comments on every exported identifier, not just package docs")
	flag.Parse()
	roots := flag.Args()
	if len(roots) == 0 {
		fmt.Fprintln(os.Stderr, "usage: doccheck [-exported] dir [dir...]")
		os.Exit(2)
	}
	var violations []string
	for _, root := range roots {
		dirs, err := goDirs(root)
		if err != nil {
			fmt.Fprintln(os.Stderr, "doccheck:", err)
			os.Exit(2)
		}
		for _, dir := range dirs {
			v, err := checkDir(dir, *exported)
			if err != nil {
				fmt.Fprintln(os.Stderr, "doccheck:", err)
				os.Exit(2)
			}
			violations = append(violations, v...)
		}
	}
	sort.Strings(violations)
	for _, v := range violations {
		fmt.Println(v)
	}
	if len(violations) > 0 {
		fmt.Fprintf(os.Stderr, "doccheck: %d undocumented identifiers\n", len(violations))
		os.Exit(1)
	}
}

// goDirs walks root and returns every directory containing at least
// one non-test .go file, skipping testdata and hidden directories.
func goDirs(root string) ([]string, error) {
	seen := map[string]bool{}
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == "testdata" || (strings.HasPrefix(name, ".") && path != root) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			seen[filepath.Dir(path)] = true
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	dirs := make([]string, 0, len(seen))
	for d := range seen {
		dirs = append(dirs, d)
	}
	sort.Strings(dirs)
	return dirs, nil
}

// checkDir parses one package directory and returns its violations.
func checkDir(dir string, exported bool) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, pkg := range pkgs {
		if !hasPackageDoc(pkg) {
			out = append(out, fmt.Sprintf("%s: package %s has no package comment", dir, pkg.Name))
		}
		if !exported {
			continue
		}
		for name, file := range pkg.Files {
			out = append(out, checkFile(fset, name, file)...)
		}
	}
	return out, nil
}

func hasPackageDoc(pkg *ast.Package) bool {
	for _, f := range pkg.Files {
		if f.Doc != nil && len(strings.TrimSpace(f.Doc.Text())) > 0 {
			return true
		}
	}
	return false
}

// checkFile reports exported top-level identifiers without doc
// comments in one file.
func checkFile(fset *token.FileSet, path string, file *ast.File) []string {
	var out []string
	report := func(pos token.Pos, what string) {
		p := fset.Position(pos)
		out = append(out, fmt.Sprintf("%s:%d: %s is undocumented", path, p.Line, what))
	}
	for _, decl := range file.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || isExportedMethodOfUnexported(d) {
				continue
			}
			if d.Doc == nil {
				report(d.Pos(), "func "+funcName(d))
			}
		case *ast.GenDecl:
			groupDoc := d.Doc != nil
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if !s.Name.IsExported() {
						continue
					}
					if !groupDoc && s.Doc == nil {
						report(s.Pos(), "type "+s.Name.Name)
					}
					out = append(out, checkTypeMembers(fset, path, s)...)
				case *ast.ValueSpec:
					var names []string
					for _, n := range s.Names {
						if n.IsExported() {
							names = append(names, n.Name)
						}
					}
					if len(names) == 0 {
						continue
					}
					if !groupDoc && s.Doc == nil && s.Comment == nil {
						report(s.Pos(), declKind(d)+" "+strings.Join(names, ", "))
					}
				}
			}
		}
	}
	return out
}

// declKind renders a GenDecl token as the word used in reports.
func declKind(d *ast.GenDecl) string {
	switch d.Tok {
	case token.CONST:
		return "const"
	case token.VAR:
		return "var"
	default:
		return d.Tok.String()
	}
}

// isExportedMethodOfUnexported reports whether d is a method whose
// receiver type is unexported — its docs are invisible in godoc, so
// requiring them is the package's own call, not the lint's.
func isExportedMethodOfUnexported(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return false
	}
	t := d.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr: // generic receiver
			t = tt.X
		case *ast.IndexListExpr:
			t = tt.X
		case *ast.Ident:
			return !tt.IsExported()
		default:
			return false
		}
	}
}

func funcName(d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return d.Name.Name
	}
	var b strings.Builder
	b.WriteString("(")
	switch t := d.Recv.List[0].Type.(type) {
	case *ast.StarExpr:
		if id, ok := t.X.(*ast.Ident); ok {
			b.WriteString("*" + id.Name)
		}
	case *ast.Ident:
		b.WriteString(t.Name)
	}
	b.WriteString(").")
	b.WriteString(d.Name.Name)
	return b.String()
}

// checkTypeMembers reports undocumented exported struct fields and
// interface methods of an exported type.
func checkTypeMembers(fset *token.FileSet, path string, s *ast.TypeSpec) []string {
	var out []string
	report := func(pos token.Pos, what string) {
		p := fset.Position(pos)
		out = append(out, fmt.Sprintf("%s:%d: %s is undocumented", path, p.Line, what))
	}
	var fields *ast.FieldList
	switch t := s.Type.(type) {
	case *ast.StructType:
		fields = t.Fields
	case *ast.InterfaceType:
		fields = t.Methods
	default:
		return nil
	}
	for _, f := range fields.List {
		if f.Doc != nil || f.Comment != nil {
			continue
		}
		for _, n := range f.Names {
			if n.IsExported() {
				report(f.Pos(), s.Name.Name+"."+n.Name)
			}
		}
	}
	return out
}
