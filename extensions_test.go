package radloc_test

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"radloc"
)

func TestPublicMovementModels(t *testing.T) {
	sc := radloc.ScenarioA(100, false)
	cfg := radloc.LocalizerConfig(sc)
	cfg.Movement = radloc.RandomWalk{Sigma: 1}
	if _, err := radloc.NewLocalizer(cfg); err != nil {
		t.Fatal(err)
	}
	cfg.Movement = radloc.ConstantVelocity{V: radloc.V(1, 0), Sigma: 0.5}
	if _, err := radloc.NewLocalizer(cfg); err != nil {
		t.Fatal(err)
	}
}

func TestPublicDetection(t *testing.T) {
	s, err := radloc.NewSPRT(radloc.SPRTConfig{Background: 5, MinElevation: 10})
	if err != nil {
		t.Fatal(err)
	}
	var d radloc.Decision
	for i := 0; i < 100 && d != radloc.SourcePresent; i++ {
		d = s.Observe(80)
	}
	if d != radloc.SourcePresent {
		t.Errorf("decision = %v", d)
	}

	m, err := radloc.NewDetectionMonitor([]radloc.SPRTConfig{
		{Background: 5, MinElevation: 10},
		{Background: 5, MinElevation: 10},
	}, 1)
	if err != nil {
		t.Fatal(err)
	}
	alarmed := false
	for i := 0; i < 100 && !alarmed; i++ {
		alarmed, err = m.Observe(0, 80)
		if err != nil {
			t.Fatal(err)
		}
	}
	if !alarmed {
		t.Error("monitor never alarmed")
	}
}

func TestPublicDeployment(t *testing.T) {
	b := radloc.NewRect(radloc.V(0, 0), radloc.V(100, 100))
	g := radloc.GridSensors(b, 6, 6, 1e-4, 5)
	ranges, err := radloc.KNearestFusionRanges(g, 1, 1.4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ranges[0]-28) > 1e-9 {
		t.Errorf("grid fusion range = %v, want 28", ranges[0])
	}
	f := radloc.FusionRangeFunc(ranges)
	if f(0) != ranges[0] {
		t.Error("range func lookup wrong")
	}
	cov := radloc.FusionCoverage(g, ranges, b, 11)
	if cov.Mean < 2 || cov.ZeroFraction > 0 {
		t.Errorf("coverage = %+v", cov)
	}
	if hs := radloc.HexSensors(b, 25, 1e-4, 5); len(hs) == 0 {
		t.Error("hex grid empty")
	}
	if js := radloc.JitteredGridSensors(b, 4, 4, 3, 1, 1e-4, 5); len(js) != 16 {
		t.Error("jittered grid wrong size")
	}
	if ps := radloc.PoissonSensors(b, 10, 2, 1e-4, 5); len(ps) != 10 {
		t.Error("poisson field wrong size")
	}
}

func TestPublicCalibration(t *testing.T) {
	check := radloc.Source{Pos: radloc.V(0, 0), Strength: 100}
	pos := radloc.V(3, 0)
	// Exact expected readings back out the exact efficiency.
	lambda := radloc.ExpectedCPM(pos, 2e-4, 5, []radloc.Source{check}, nil)
	readings := []int{int(lambda), int(lambda), int(lambda)}
	eff, err := radloc.CalibrateSensor(readings, pos, 5, check)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(eff-2e-4)/2e-4 > 0.01 {
		t.Errorf("calibrated efficiency = %v, want ≈2e-4", eff)
	}
}

func TestPublicRendering(t *testing.T) {
	sc := radloc.ScenarioA(10, true)
	ascii := radloc.RenderASCII(sc, nil, nil)
	if !strings.Contains(ascii, "O") {
		t.Error("ASCII render missing sources")
	}
	svg := radloc.RenderSVG(sc, nil, nil, false)
	if !strings.HasPrefix(svg, "<svg") {
		t.Error("not an SVG")
	}
}

func TestPublicScenarioJSON(t *testing.T) {
	sc := radloc.ScenarioA(10, true)
	data, err := radloc.SaveScenarioJSON(sc)
	if err != nil {
		t.Fatal(err)
	}
	back, err := radloc.LoadScenarioJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Sensors) != 36 || len(back.Obstacles) != 1 {
		t.Errorf("round trip lost data: %d sensors %d obstacles", len(back.Sensors), len(back.Obstacles))
	}
	if _, err := radloc.LoadScenarioJSON([]byte("{}")); err == nil {
		t.Error("empty JSON accepted")
	}
}

func TestPublicRecordReplay(t *testing.T) {
	sc := radloc.ScenarioA(50, false)
	sc.Params.TimeSteps = 4
	var buf bytes.Buffer
	n, err := radloc.RecordMeasurements(&buf, sc, 5)
	if err != nil {
		t.Fatal(err)
	}
	if n != 4*36 {
		t.Fatalf("recorded %d", n)
	}
	loc, err := radloc.NewLocalizer(radloc.LocalizerConfig(sc))
	if err != nil {
		t.Fatal(err)
	}
	back, err := radloc.ReplayMeasurements(&buf, sc.Sensors, loc)
	if err != nil || back != n {
		t.Fatalf("replayed %d, %v", back, err)
	}
	if loc.Iterations() != n {
		t.Errorf("iterations = %d", loc.Iterations())
	}
}

func TestPublicLatencyMetrics(t *testing.T) {
	errs := []float64{9, 5, 2, 1, 1}
	if got := radloc.TimeToLock(errs, 3); got != 2 {
		t.Errorf("TimeToLock = %d", got)
	}
	if got := radloc.TimeToClear([]float64{3, 0, 0}, 0.5); got != 1 {
		t.Errorf("TimeToClear = %d", got)
	}
	if got := radloc.Availability(errs, 3); math.Abs(got-0.6) > 1e-12 {
		t.Errorf("Availability = %v", got)
	}
}

func TestPublicMobileAndDiagnose(t *testing.T) {
	p := radloc.MobilePlanner{Speed: 3, Bounds: radloc.NewRect(radloc.V(0, 0), radloc.V(100, 100))}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	sc := radloc.ScenarioA(50, false)
	readings := make([]radloc.DiagnosticReading, len(sc.Sensors))
	for i, sen := range sc.Sensors {
		cpm := int(radloc.ExpectedCPM(sen.Pos, sen.Efficiency, sen.Background, sc.Sources, nil))
		readings[i] = radloc.DiagnosticReading{Sensor: sen, TotalCPM: cpm, Count: 1}
	}
	ests := []radloc.Estimate{
		{Pos: sc.Sources[0].Pos, Strength: 50, Mass: 0.4},
		{Pos: sc.Sources[1].Pos, Strength: 50, Mass: 0.4},
	}
	rep, err := radloc.Diagnose(readings, ests, 3)
	if err != nil {
		t.Fatal(err)
	}
	if rep.RMSZ > 1.5 {
		t.Errorf("perfect model RMSZ = %v", rep.RMSZ)
	}
}

func TestPublicNuclides(t *testing.T) {
	info, err := radloc.NuclideData(radloc.Cs137)
	if err != nil || info.PrimaryMeV != 0.662 {
		t.Errorf("Cs-137 data: %+v, %v", info, err)
	}
	half, err := radloc.DecayActivity(100, radloc.Cs137, info.HalfLife)
	if err != nil || math.Abs(half-50) > 1e-9 {
		t.Errorf("decay: %v, %v", half, err)
	}
	mu, err := radloc.AttenuationFor("lead", radloc.Cs137)
	if err != nil || mu < 1 || mu > 1.5 {
		t.Errorf("lead µ for Cs-137: %v, %v", mu, err)
	}
}
