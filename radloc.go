// Package radloc localizes multiple gamma-radiation point sources from
// the noisy counts-per-minute readings of a sensor network, in areas
// that may contain unknown shielding obstacles.
//
// It is a from-scratch Go reproduction of Chin, Yau & Rao, "Efficient
// and Robust Localization of Multiple Radiation Sources in Complex
// Environments" (ICDCS 2011): a hybrid particle-filter + mean-shift
// estimator whose state size is independent of the number of sources,
// that learns the number of sources from the data, and that needs no
// obstacle model. The package also ships the paper's full simulation
// substrate (radiation physics, Poisson sensors, deployment scenarios,
// unreliable delivery), the comparison baselines, and the experiment
// harness that regenerates every figure and table in the paper —
// see DESIGN.md and EXPERIMENTS.md.
//
// # Quick start
//
//	sc := radloc.ScenarioA(10 /* µCi */, false /* no obstacle */)
//	res, err := radloc.Run(sc, radloc.RunOptions{Seed: 1, Reps: 10})
//	if err != nil { ... }
//	fmt.Println(res.MeanErr) // mean localization error per time step
//
// For streaming use, drive a Localizer directly:
//
//	loc, err := radloc.NewLocalizer(radloc.LocalizerConfig(sc))
//	for each measurement m from sensor s {
//	    loc.Ingest(s, m)
//	}
//	sources := loc.Estimates()
package radloc

import (
	"radloc/internal/baseline"
	"radloc/internal/core"
	"radloc/internal/eval"
	"radloc/internal/geometry"
	"radloc/internal/network"
	"radloc/internal/radiation"
	"radloc/internal/rng"
	"radloc/internal/scenario"
	"radloc/internal/sensor"
	"radloc/internal/sim"
)

// Geometry primitives.
type (
	// Vec is a 2-D point or displacement.
	Vec = geometry.Vec
	// Rect is an axis-aligned rectangle.
	Rect = geometry.Rect
	// Polygon is a simple polygon (obstacle footprints).
	Polygon = geometry.Polygon
)

// V is shorthand for Vec{X: x, Y: y}.
func V(x, y float64) Vec { return geometry.V(x, y) }

// NewRect returns the rectangle spanning corners a and b.
func NewRect(a, b Vec) Rect { return geometry.NewRect(a, b) }

// NewPolygon builds an obstacle footprint from a vertex ring.
func NewPolygon(verts []Vec) (Polygon, error) { return geometry.NewPolygon(verts) }

// Physical model.
type (
	// Source is a gamma point source ⟨x, y, strength⟩ (µCi).
	Source = radiation.Source
	// Obstacle is a shielding body with attenuation coefficient µ.
	Obstacle = radiation.Obstacle
	// Material names a shielding material with a published µ.
	Material = radiation.Material
)

// Shielding materials with attenuation coefficients at 1 MeV.
const (
	Lead     = radiation.Lead
	Steel    = radiation.Steel
	Concrete = radiation.Concrete
	Water    = radiation.Water
	Brick    = radiation.Brick
	Wood     = radiation.Wood
)

// ExpectedCPM returns the expected sensor reading (Eq. 4 of the paper)
// at pos for a sensor with the given counting efficiency and background
// rate, under the full ground-truth model.
func ExpectedCPM(pos Vec, efficiency, background float64, sources []Source, obstacles []Obstacle) float64 {
	return radiation.ExpectedCPM(pos, efficiency, background, sources, obstacles)
}

// Sensors and measurements.
type (
	// Sensor is a radiation counter at a known location.
	Sensor = sensor.Sensor
	// Measurement is one delivered reading.
	Measurement = sensor.Measurement
)

// GridSensors places nx×ny sensors in a uniform grid over bounds.
func GridSensors(bounds Rect, nx, ny int, efficiency, background float64) []Sensor {
	return sensor.Grid(bounds, nx, ny, efficiency, background)
}

// The localizer (the paper's algorithm).
type (
	// Localizer is the hybrid particle-filter + mean-shift estimator.
	Localizer = core.Localizer
	// Config parameterizes a Localizer.
	Config = core.Config
	// Estimate is one recovered source.
	Estimate = core.Estimate
	// Particle is one single-source hypothesis.
	Particle = core.Particle
)

// NewLocalizer builds the estimator; see Config for the parameters and
// their paper defaults.
func NewLocalizer(cfg Config) (*Localizer, error) { return core.NewLocalizer(cfg) }

// Scenarios and the experiment harness.
type (
	// Scenario is a complete experiment configuration.
	Scenario = scenario.Scenario
	// Params is a scenario's algorithm parameter block.
	Params = scenario.Params
	// RunOptions configures Run.
	RunOptions = sim.Options
	// Result aggregates the trials of one scenario run.
	Result = sim.Result
	// Trial is one simulation run's outcome.
	Trial = sim.Trial
	// StepStat is one trial's metrics at one time step.
	StepStat = sim.StepStat
)

// ScenarioA returns the paper's Scenario A (100×100 area, 36 grid
// sensors, two sources of the given strength), optionally with the
// U-shaped obstacle of Fig. 8(a).
func ScenarioA(strength float64, withObstacle bool) Scenario {
	return scenario.A(strength, withObstacle)
}

// ScenarioAThree returns the three-source Scenario A variant of Fig. 5.
func ScenarioAThree(strength float64) Scenario { return scenario.AThreeSources(strength) }

// ScenarioB returns the paper's Scenario B (260×260 area, 196 grid
// sensors, 9 sources, 3 obstacles).
func ScenarioB(withObstacles bool) Scenario { return scenario.B(withObstacles) }

// ScenarioC returns the paper's Scenario C (Scenario B with 195
// randomly placed sensors and out-of-order delivery).
func ScenarioC(withObstacles bool, layoutSeed uint64) Scenario {
	return scenario.C(withObstacles, layoutSeed)
}

// DefaultParams returns the paper's Scenario A parameter block.
func DefaultParams() Params { return scenario.DefaultParams() }

// LocalizerConfig translates a scenario's parameters into a localizer
// configuration.
func LocalizerConfig(sc Scenario) Config { return sim.LocalizerConfig(sc) }

// Run simulates a scenario end to end and aggregates repeated trials.
func Run(sc Scenario, opts RunOptions) (Result, error) { return sim.Run(sc, opts) }

// Evaluation.
type (
	// Matching associates estimates with true sources.
	Matching = eval.Matching
)

// Match associates estimates to sources one-to-one within radius
// (40 units in the paper) and counts false positives/negatives.
func Match(estimates []Estimate, sources []Source, radius float64) Matching {
	return eval.Match(estimates, sources, radius)
}

// Delivery plans for streaming use.
type (
	// DeliveryPlan orders measurement deliveries over time steps.
	DeliveryPlan = network.Plan
	// DeliveryEvent is one delivery.
	DeliveryEvent = network.Event
)

// InOrderDelivery has every sensor report once per step, in ID order.
func InOrderDelivery(numSensors, steps int) DeliveryPlan {
	return network.InOrder(numSensors, steps)
}

// OutOfOrderDelivery reorders deliveries with random exponential
// latency (in time-step units) and drops each message with dropProb.
func OutOfOrderDelivery(numSensors, steps int, seed uint64, meanLatency, dropProb float64) DeliveryPlan {
	return network.OutOfOrder(numSensors, steps, rng.NewNamed(seed, "radloc/delivery"), network.Options{
		MeanLatency: meanLatency,
		DropProb:    dropProb,
	})
}

// Baselines (the algorithms the paper compares against).
type (
	// Reading is a (sensor, CPM) pair consumed by the batch baselines.
	Reading = baseline.Reading
	// MLEConfig configures the joint maximum-likelihood baseline.
	MLEConfig = baseline.MLEConfig
	// MLEResult is the MLE baseline's selected model.
	MLEResult = baseline.MLEResult
	// GridConfig configures the grid-decomposition baseline.
	GridConfig = baseline.GridConfig
	// GridResult is the grid baseline's recovered field.
	GridResult = baseline.GridResult
	// SingleConfig configures the single-source baselines.
	SingleConfig = baseline.SingleConfig
)

// Model-selection criteria for BaselineMLE.
const (
	AIC = baseline.AIC
	BIC = baseline.BIC
)

// BaselineMLE jointly fits K = 0..KMax sources by maximum likelihood
// and selects K with an information criterion — the approach of the
// algorithms the paper improves upon.
func BaselineMLE(readings []Reading, cfg MLEConfig, seed uint64) (MLEResult, error) {
	return baseline.MLE(readings, cfg, rng.NewNamed(seed, "radloc/baseline-mle"))
}

// BaselineGrid recovers a per-cell strength field by sparse
// Richardson–Lucy deconvolution (the discretized convex-program
// approach of the paper's reference [16]).
func BaselineGrid(readings []Reading, cfg GridConfig) (GridResult, error) {
	return baseline.GridDecompose(readings, cfg)
}

// BaselineMoE localizes a single source by fusing per-triple log-ratio
// estimates with the mean-of-estimators method.
func BaselineMoE(readings []Reading, cfg SingleConfig, seed uint64) (Source, error) {
	return baseline.MoE(readings, cfg, rng.NewNamed(seed, "radloc/baseline-moe"))
}

// BaselineITP localizes a single source by iterative-pruning fusion.
func BaselineITP(readings []Reading, cfg SingleConfig, seed uint64) (Source, error) {
	return baseline.ITP(readings, cfg, rng.NewNamed(seed, "radloc/baseline-itp"))
}

// BaselineSingleMLE fits exactly one source by maximum likelihood.
func BaselineSingleMLE(readings []Reading, cfg SingleConfig, seed uint64) (Source, error) {
	return baseline.SingleMLE(readings, cfg, rng.NewNamed(seed, "radloc/baseline-smle"))
}
